//! Training workload configuration and memory accounting.
//!
//! The paper trains with mixed precision (FP16 weights/activations, FP32
//! Adam states; §VIII-A). Memory per die is the sum of
//!
//! * parameter states — weights + gradients + optimizer (16 B/param before
//!   sharding);
//! * activations — per-layer footprints following the Megatron-3
//!   (Korthikanti et al. [52]) accounting, with optional
//!   selective/full recomputation and FlashAttention (which removes the
//!   `S x S` score materialization).

use serde::{Deserialize, Serialize};

use crate::models::ModelConfig;
use crate::tensor::DType;
use crate::{GraphError, Result};

/// Activation recomputation policy.
///
/// `Hash` is required because the mode is part of the solver's
/// memoization key `(HybridConfig, MappingEngine, RecomputeMode)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum RecomputeMode {
    /// Keep every intermediate activation.
    None,
    /// Selective recomputation: drop the attention score/softmax tensors
    /// (equivalent in footprint to FlashAttention).
    #[default]
    Selective,
    /// Full recomputation: keep only each block's input.
    Full,
}

/// A training-step workload: batch geometry, precision and recompute policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Global batch size (sequences per optimizer step).
    pub global_batch: u64,
    /// Sequence length.
    pub seq_len: u64,
    /// Gradient-accumulation micro-batches; activations are alive for one
    /// micro-batch at a time (per in-flight pipeline stage).
    pub micro_batches: u64,
    /// Weight/activation dtype (paper: FP16).
    pub compute_dtype: DType,
    /// Optimizer master/moment dtype (paper: FP32 Adam).
    pub optimizer_dtype: DType,
    /// Activation recomputation policy.
    pub recompute: RecomputeMode,
    /// Whether FlashAttention is used (fused attention, no score tensor).
    pub flash_attention: bool,
}

impl Workload {
    /// Standard mixed-precision Adam training at the paper's settings.
    pub fn training(global_batch: u64, seq_len: u64) -> Self {
        Workload {
            global_batch,
            seq_len,
            micro_batches: 8,
            compute_dtype: DType::F16,
            optimizer_dtype: DType::F32,
            recompute: RecomputeMode::Selective,
            flash_attention: true,
        }
    }

    /// The workload a model's Table II row prescribes.
    pub fn for_model(model: &ModelConfig) -> Self {
        Workload::training(model.default_batch, model.default_seq)
    }

    /// Overrides the micro-batch count.
    pub fn with_micro_batches(mut self, micro_batches: u64) -> Self {
        self.micro_batches = micro_batches.max(1);
        self
    }

    /// Overrides the recompute mode.
    pub fn with_recompute(mut self, recompute: RecomputeMode) -> Self {
        self.recompute = recompute;
        self
    }

    /// Sequences per micro-batch.
    pub fn micro_batch_size(&self) -> u64 {
        (self.global_batch / self.micro_batches).max(1)
    }

    /// Tokens processed per optimizer step.
    pub fn tokens_per_step(&self) -> u64 {
        self.global_batch * self.seq_len
    }

    /// Validates batch geometry.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] for zero batch/sequence or
    /// micro-batches exceeding the global batch.
    pub fn validate(&self) -> Result<()> {
        if self.global_batch == 0 || self.seq_len == 0 {
            return Err(GraphError::InvalidParameter(
                "zero batch or sequence".into(),
            ));
        }
        if self.micro_batches == 0 || self.micro_batches > self.global_batch {
            return Err(GraphError::InvalidParameter(format!(
                "micro_batches {} incompatible with global batch {}",
                self.micro_batches, self.global_batch
            )));
        }
        Ok(())
    }

    /// Bytes of parameter state per parameter before any sharding:
    /// FP16 weight + FP16 gradient + FP32 Adam m + FP32 Adam v (12 B/param;
    /// the FP16 weight doubles as the master copy, as the wafer's
    /// 32 x 72 GB capacity envelope implies for the paper's 175B runs).
    pub fn bytes_per_param(&self) -> f64 {
        let w = self.compute_dtype.bytes() as f64;
        let g = self.compute_dtype.bytes() as f64;
        let opt = 2.0 * self.optimizer_dtype.bytes() as f64;
        w + g + opt
    }

    /// Unsharded parameter-state bytes for a whole model.
    pub fn param_state_bytes(&self, model: &ModelConfig) -> f64 {
        model.total_params() as f64 * self.bytes_per_param()
    }

    /// Activation bytes of **one Transformer layer for one micro-batch**,
    /// before parallel sharding, following Megatron-3 accounting:
    ///
    /// * no recompute, standard attention: `s·b·h·(34 + 5·a·s/h)`
    /// * FlashAttention or selective recompute: `s·b·h·34`
    /// * full recompute: `2·s·b·h` (block input only)
    ///
    /// where `b` here is the micro-batch size.
    pub fn activation_bytes_per_layer(&self, model: &ModelConfig) -> f64 {
        self.activation_bytes_per_layer_with(model, self.micro_batch_size(), self.seq_len)
    }

    /// As [`Workload::activation_bytes_per_layer`] with explicit local batch
    /// and sequence (callers apply DP/SP sharding by shrinking them).
    pub fn activation_bytes_per_layer_with(
        &self,
        model: &ModelConfig,
        local_batch: u64,
        local_seq: u64,
    ) -> f64 {
        let s = local_seq as f64;
        let b = local_batch as f64;
        let h = model.hidden as f64;
        let a = model.heads as f64;
        match self.recompute {
            RecomputeMode::Full => 2.0 * s * b * h,
            RecomputeMode::Selective => 34.0 * s * b * h,
            RecomputeMode::None => {
                let score_term = if self.flash_attention {
                    0.0
                } else {
                    5.0 * a * s / h
                };
                s * b * h * (34.0 + score_term)
            }
        }
    }

    /// Unsharded total activation bytes for the whole model (one in-flight
    /// micro-batch).
    pub fn activation_bytes_total(&self, model: &ModelConfig) -> f64 {
        model.layers as f64 * self.activation_bytes_per_layer(model)
    }

    /// Approximate training FLOPs per optimizer step: `6 · params · tokens`
    /// for GEMM work plus the attention quadratic term
    /// `12 · L · h · s² · b` (fwd+bwd, two batched matmuls). MoE models
    /// charge only their *active* parameters (each token runs `top_k` of
    /// the `num_experts` expert FFNs), so stored experts do not inflate
    /// the FLOP count.
    pub fn step_flops(&self, model: &ModelConfig) -> f64 {
        let gemm = 6.0 * model.active_params() as f64 * self.tokens_per_step() as f64;
        let attn = 12.0
            * model.layers as f64
            * model.hidden as f64
            * (self.seq_len as f64).powi(2)
            * self.global_batch as f64;
        gemm + attn
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::ModelZoo;
    use temp_wsc::units::GB;

    #[test]
    fn defaults_are_mixed_precision_adam() {
        let w = Workload::training(128, 2048);
        assert_eq!(w.compute_dtype, DType::F16);
        assert_eq!(w.optimizer_dtype, DType::F32);
        assert!((w.bytes_per_param() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_degenerate_workloads() {
        assert!(Workload::training(0, 2048).validate().is_err());
        assert!(Workload::training(128, 0).validate().is_err());
        let w = Workload::training(4, 128).with_micro_batches(8);
        assert!(w.validate().is_err());
    }

    #[test]
    fn micro_batch_size_divides_global() {
        let w = Workload::training(128, 2048); // 8 micro-batches
        assert_eq!(w.micro_batch_size(), 16);
        assert_eq!(w.tokens_per_step(), 128 * 2048);
    }

    #[test]
    fn param_state_is_12_bytes_each() {
        let m = ModelZoo::gpt3_6_7b();
        let w = Workload::training(128, 2048);
        let total = w.param_state_bytes(&m);
        let expected = m.total_params() as f64 * 12.0;
        assert!((total - expected).abs() < 1.0);
        // GPT-3 6.7B: ~80 GB of parameter states before sharding.
        assert!(total > 70.0 * GB && total < 90.0 * GB, "{total}");
    }

    #[test]
    fn recompute_modes_order_memory() {
        let m = ModelZoo::gpt3_175b();
        let base = Workload::training(128, 2048);
        let none = base.clone().with_recompute(RecomputeMode::None);
        let none_std = Workload {
            flash_attention: false,
            ..none.clone()
        };
        let sel = base.clone().with_recompute(RecomputeMode::Selective);
        let full = base.with_recompute(RecomputeMode::Full);
        let a_none_std = none_std.activation_bytes_per_layer(&m);
        let a_none = none.activation_bytes_per_layer(&m);
        let a_sel = sel.activation_bytes_per_layer(&m);
        let a_full = full.activation_bytes_per_layer(&m);
        assert!(a_none_std > a_none, "score tensor dominates without flash");
        assert!(a_none >= a_sel);
        assert!(a_sel > a_full);
    }

    #[test]
    fn activation_bytes_scale_with_batch_and_seq() {
        let m = ModelZoo::gpt3_6_7b();
        let w = Workload::training(128, 2048);
        let a1 = w.activation_bytes_per_layer_with(&m, 16, 2048);
        let a2 = w.activation_bytes_per_layer_with(&m, 32, 2048);
        let a3 = w.activation_bytes_per_layer_with(&m, 16, 4096);
        assert!((a2 / a1 - 2.0).abs() < 1e-9);
        assert!((a3 / a1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn step_flops_approximates_six_params_tokens() {
        let m = ModelZoo::gpt3_175b();
        let w = Workload::training(128, 2048);
        let f = w.step_flops(&m);
        let floor = 6.0 * m.total_params() as f64 * w.tokens_per_step() as f64;
        assert!(f > floor);
        assert!(
            f < 1.3 * floor,
            "attention term should be a modest addition"
        );
    }
}
