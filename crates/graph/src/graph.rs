//! Operator DAG with residual edges and residual-aware segmentation.
//!
//! The DLS algorithm (Fig. 12(b)) first "partitions the initial graph into k
//! sub-graphs with no residual connections", shrinking the DP search space
//! from O(N^2) to O(N^2 / k). [`ComputeGraph::segments`] implements exactly
//! that: it cuts the topological order at every point not straddled by a
//! residual edge.

use serde::{Deserialize, Serialize};

use crate::op::Operator;
use crate::{GraphError, Result};

/// Index of an operator inside a [`ComputeGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct OpId(pub usize);

impl OpId {
    /// Raw index.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl std::fmt::Display for OpId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// A directed acyclic graph of operators. Nodes are stored in construction
/// order, which the builders guarantee to be a valid topological order.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ComputeGraph {
    ops: Vec<Operator>,
    /// Dataflow edges `(from, to)` with `from < to`.
    edges: Vec<(OpId, OpId)>,
    /// Residual (skip-connection) edges, a subset of long-range dataflow.
    residual_edges: Vec<(OpId, OpId)>,
}

impl ComputeGraph {
    /// An empty graph.
    pub fn new() -> Self {
        ComputeGraph::default()
    }

    /// Appends an operator, returning its id.
    pub fn add_op(&mut self, op: Operator) -> OpId {
        self.ops.push(op);
        OpId(self.ops.len() - 1)
    }

    /// Adds a dataflow edge.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidEdge`] when ids are out of range or the
    /// edge points backwards (which would break the topological invariant).
    pub fn add_edge(&mut self, from: OpId, to: OpId) -> Result<()> {
        self.check_edge(from, to)?;
        self.edges.push((from, to));
        Ok(())
    }

    /// Adds a residual (skip) edge. Residual edges are also dataflow edges.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidEdge`] under the same conditions as
    /// [`ComputeGraph::add_edge`].
    pub fn add_residual_edge(&mut self, from: OpId, to: OpId) -> Result<()> {
        self.check_edge(from, to)?;
        self.edges.push((from, to));
        self.residual_edges.push((from, to));
        Ok(())
    }

    fn check_edge(&self, from: OpId, to: OpId) -> Result<()> {
        if from.0 >= self.ops.len() {
            return Err(GraphError::UnknownOp(from.0));
        }
        if to.0 >= self.ops.len() {
            return Err(GraphError::UnknownOp(to.0));
        }
        if from.0 >= to.0 {
            return Err(GraphError::InvalidEdge {
                from: from.0,
                to: to.0,
                reason: "edges must point forward in construction order".into(),
            });
        }
        Ok(())
    }

    /// Number of operators.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// The operator at `id`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownOp`] for out-of-range ids.
    pub fn op(&self, id: OpId) -> Result<&Operator> {
        self.ops.get(id.0).ok_or(GraphError::UnknownOp(id.0))
    }

    /// All operators in topological order.
    pub fn ops(&self) -> &[Operator] {
        &self.ops
    }

    /// All dataflow edges.
    pub fn edges(&self) -> &[(OpId, OpId)] {
        &self.edges
    }

    /// Residual edges only.
    pub fn residual_edges(&self) -> &[(OpId, OpId)] {
        &self.residual_edges
    }

    /// Ids in topological order.
    pub fn topo_order(&self) -> impl Iterator<Item = OpId> + '_ {
        (0..self.ops.len()).map(OpId)
    }

    /// Direct successors of an operator.
    pub fn successors(&self, id: OpId) -> Vec<OpId> {
        self.edges
            .iter()
            .filter(|(f, _)| *f == id)
            .map(|(_, t)| *t)
            .collect()
    }

    /// Direct predecessors of an operator.
    pub fn predecessors(&self, id: OpId) -> Vec<OpId> {
        self.edges
            .iter()
            .filter(|(_, t)| *t == id)
            .map(|(f, _)| *f)
            .collect()
    }

    /// Total forward FLOPs of the graph.
    pub fn total_flops(&self) -> f64 {
        self.ops.iter().map(|o| o.flops()).sum()
    }

    /// Total trained parameters of the graph.
    pub fn total_params(&self) -> u64 {
        self.ops.iter().map(|o| o.kind.weight_params()).sum()
    }

    /// Splits the topological order into maximal segments not straddled by
    /// any residual edge (the DLS graph-partition step).
    ///
    /// A cut between positions `i` and `i+1` is legal iff no residual edge
    /// `(f, t)` has `f <= i < t`. Returned segments are contiguous,
    /// non-empty ranges covering all operators.
    pub fn segments(&self) -> Vec<std::ops::Range<usize>> {
        let n = self.ops.len();
        if n == 0 {
            return Vec::new();
        }
        let mut cut_ok = vec![true; n]; // cut after position i
        for (f, t) in &self.residual_edges {
            for ok in &mut cut_ok[f.0..t.0] {
                *ok = false;
            }
        }
        let mut segments = Vec::new();
        let mut start = 0;
        for (i, item) in cut_ok.iter().enumerate().take(n) {
            let end_of_graph = i + 1 == n;
            if *item || end_of_graph {
                segments.push(start..i + 1);
                start = i + 1;
            }
        }
        segments
    }

    /// Concatenates `other` after `self`, shifting its ids; returns the
    /// offset at which `other`'s operators begin.
    pub fn append(&mut self, other: &ComputeGraph) -> usize {
        let offset = self.ops.len();
        self.ops.extend(other.ops.iter().cloned());
        for (f, t) in &other.edges {
            self.edges.push((OpId(f.0 + offset), OpId(t.0 + offset)));
        }
        for (f, t) in &other.residual_edges {
            self.residual_edges
                .push((OpId(f.0 + offset), OpId(t.0 + offset)));
        }
        offset
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpKind;
    use crate::tensor::LinearDims;

    fn gemm(name: &str) -> Operator {
        Operator::new(name, OpKind::Gemm(LinearDims::new(1, 16, 16, 16)))
    }

    fn chain(n: usize) -> ComputeGraph {
        let mut g = ComputeGraph::new();
        let ids: Vec<OpId> = (0..n).map(|i| g.add_op(gemm(&format!("op{i}")))).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]).unwrap();
        }
        g
    }

    #[test]
    fn add_edge_validates_direction_and_range() {
        let mut g = chain(3);
        assert!(matches!(
            g.add_edge(OpId(2), OpId(1)),
            Err(GraphError::InvalidEdge { .. })
        ));
        assert!(matches!(
            g.add_edge(OpId(0), OpId(9)),
            Err(GraphError::UnknownOp(9))
        ));
    }

    #[test]
    fn successors_and_predecessors() {
        let g = chain(3);
        assert_eq!(g.successors(OpId(0)), vec![OpId(1)]);
        assert_eq!(g.predecessors(OpId(2)), vec![OpId(1)]);
        assert!(g.predecessors(OpId(0)).is_empty());
    }

    #[test]
    fn chain_without_residuals_is_fully_segmented() {
        let g = chain(5);
        let segs = g.segments();
        assert_eq!(segs.len(), 5);
        assert!(segs.iter().all(|s| s.len() == 1));
    }

    #[test]
    fn residual_edges_merge_segments() {
        // 0 -> 1 -> 2 -> 3 -> 4 with residual 0 -> 2 and 2 -> 4:
        // no legal cut inside [0, 2] or [2, 4] => segments [0..3] and [3..5]?
        // Careful: residual 0->2 blocks cuts after 0 and 1; residual 2->4
        // blocks cuts after 2 and 3. So the only cut is at the very end:
        // one segment [0..5]... unless the first residual ends where the
        // second starts, blocking everything in between.
        let mut g = chain(5);
        g.add_residual_edge(OpId(0), OpId(2)).unwrap();
        g.add_residual_edge(OpId(2), OpId(4)).unwrap();
        let segs = g.segments();
        assert_eq!(segs, vec![0..5]);
    }

    #[test]
    fn disjoint_residual_spans_yield_two_segments() {
        let mut g = chain(6);
        g.add_residual_edge(OpId(0), OpId(2)).unwrap();
        g.add_residual_edge(OpId(3), OpId(5)).unwrap();
        let segs = g.segments();
        assert_eq!(segs, vec![0..3, 3..6]);
    }

    #[test]
    fn segments_cover_all_ops_exactly_once() {
        let mut g = chain(10);
        g.add_residual_edge(OpId(1), OpId(4)).unwrap();
        g.add_residual_edge(OpId(6), OpId(8)).unwrap();
        let segs = g.segments();
        let total: usize = segs.iter().map(|s| s.len()).sum();
        assert_eq!(total, 10);
        let mut expected_start = 0;
        for s in &segs {
            assert_eq!(s.start, expected_start);
            expected_start = s.end;
        }
    }

    #[test]
    fn append_shifts_ids() {
        let mut a = chain(3);
        let b = chain(2);
        let off = a.append(&b);
        assert_eq!(off, 3);
        assert_eq!(a.op_count(), 5);
        assert!(a.edges().contains(&(OpId(3), OpId(4))));
    }

    #[test]
    fn totals_sum_over_ops() {
        let g = chain(4);
        let per = gemm("x").flops();
        assert!((g.total_flops() - 4.0 * per).abs() < 1.0);
        assert_eq!(g.total_params(), 4 * 16 * 16);
    }
}
