//! The segment-chain IR: the model as a chain of *distinct* segments.
//!
//! TEMP's Level-1 DP (Fig. 12(b)) is defined over a chain of segments cut
//! at residual-legal boundaries. A real decoder-only LLM is not a uniform
//! stack of identical Transformer blocks: it is
//!
//! ```text
//! [ Embedding ] -> [ Block ] x L -> [ Head ]
//!   vocab x H       13 ops each      final LN + LM head GEMM + CE softmax
//!   lookup-bound    GEMM-bound       vocab-GEMM-bound
//! ```
//!
//! and the three segment kinds have very different cost physics: the
//! embedding lookup is HBM-bandwidth-bound and pays a vocab-parallel
//! output all-reduce when the table is sharded over TP/TATP, the blocks
//! are the Fig. 12(a) GEMM pipeline, and the LM head is one huge
//! `[B,S,H] x [H,V]` GEMM whose tied-weight gradients must synchronize
//! across data-parallel replicas. Costing them with one replicated block
//! cost (the pre-segment-chain behavior) makes the DP's transition matrix
//! vacuous — every segment always picks the same candidate.
//!
//! [`SegmentChain::for_model`] derives the chain from a
//! [`ModelConfig`] + [`Workload`] pair via [`TransformerBuilder`], with
//! per-segment parameter/FLOP/activation footprints. Identical interior
//! blocks are run-length compressed ([`Segment::count`]): a run of equal
//! segments assigned one candidate pays no internal transitions, and for
//! non-negative transition costs a uniform within-run assignment is
//! optimal, so the compressed DP is exact.

use serde::{Deserialize, Serialize};

use crate::models::ModelConfig;
use crate::op::Operator;
use crate::transformer::TransformerBuilder;
use crate::workload::Workload;

/// The segment vocabulary of a decoder-only LLM chain.
///
/// `Hash`/`Eq` because the solver memoizes per-segment costs under the key
/// `(SegmentKind, HybridConfig, MappingEngine, RecomputeMode)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SegmentKind {
    /// Token-embedding lookup (vocab x H table).
    Embedding,
    /// One Fig. 12(a) Transformer block.
    Block,
    /// One Mixture-of-Experts block: the dense attention path plus a
    /// router, expert FFNs dispatched over the expert-parallel groups
    /// (all-to-all), and the combine back into the residual stream.
    MoeBlock,
    /// Final norm + LM-head GEMM + cross-entropy softmax.
    Head,
}

impl SegmentKind {
    /// Every segment kind, in the one canonical order. [`SegmentKind::index`]
    /// is defined as the position in this array; anything that needs a
    /// dense per-kind table (cost-table keys, surrogate features) must go
    /// through it so adding a kind cannot desynchronize consumers.
    pub const ALL: [SegmentKind; 4] = [
        SegmentKind::Embedding,
        SegmentKind::Block,
        SegmentKind::MoeBlock,
        SegmentKind::Head,
    ];

    /// The kind's position in [`SegmentKind::ALL`]. Match-exhaustive: a
    /// new kind fails to compile until it is placed in the canonical
    /// ordering (and the `ALL` round-trip is unit-tested).
    pub fn index(&self) -> usize {
        match self {
            SegmentKind::Embedding => 0,
            SegmentKind::Block => 1,
            SegmentKind::MoeBlock => 2,
            SegmentKind::Head => 3,
        }
    }

    /// Stable small-integer encoding for surrogate features (derived from
    /// the canonical [`SegmentKind::index`]).
    pub fn code(&self) -> u8 {
        self.index() as u8
    }
}

impl std::fmt::Display for SegmentKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SegmentKind::Embedding => "embedding",
            SegmentKind::Block => "block",
            SegmentKind::MoeBlock => "moe-block",
            SegmentKind::Head => "head",
        };
        write!(f, "{s}")
    }
}

/// One run of identical segments in the chain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// What kind of segment this is.
    pub kind: SegmentKind,
    /// How many identical instances the run covers (blocks: `model.layers`;
    /// embedding/head: 1).
    pub count: u64,
    /// Trained parameters of one instance (the LM head's GEMM weight is
    /// tied to the embedding table and owned there).
    pub params: u64,
    /// Training FLOPs of one instance at the global batch (fwd + bwd).
    pub flops: f64,
    /// Unsharded *stored* activation bytes of one instance for one
    /// micro-batch (what the backward pass keeps around).
    pub activation_bytes: f64,
    /// Unsharded *boundary* tensor bytes of one instance for one
    /// micro-batch: what the segment hands to its successor (the residual
    /// stream, `B x S x H` for every kind in the dense chain). This is the
    /// tensor a pipeline cut after this segment must move between stages.
    pub output_bytes: f64,
    /// The operator list of one instance, built at the global batch (the
    /// cost model applies per-die sharding, exactly as for blocks).
    pub ops: Vec<Operator>,
}

/// The whole-model segment chain: embedding -> blocks -> head.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentChain {
    segments: Vec<Segment>,
}

impl SegmentChain {
    /// Builds the chain for a model/workload pair. The block run is
    /// derived from [`TransformerBuilder::block`]; embedding and head come
    /// from [`TransformerBuilder::embedding_graph`] /
    /// [`TransformerBuilder::head_graph`].
    pub fn for_model(model: &ModelConfig, workload: &Workload) -> Self {
        let builder = TransformerBuilder::new(model, workload);
        let micro_tokens = workload.micro_batch_size() as f64 * workload.seq_len as f64;
        let act_dtype = workload.compute_dtype.bytes() as f64;
        let sbh = micro_tokens * model.hidden as f64 * act_dtype;

        let make = |kind: SegmentKind, count: u64, ops: Vec<Operator>, act_bytes: f64| {
            let params = ops.iter().map(|o| o.kind.weight_params()).sum();
            let flops = ops.iter().map(Operator::training_flops).sum();
            Segment {
                kind,
                count,
                params,
                flops,
                activation_bytes: act_bytes,
                // Every dense-chain segment emits the residual stream.
                output_bytes: sbh,
                ops,
            }
        };

        let embedding = make(
            SegmentKind::Embedding,
            1,
            builder.embedding_graph().ops().to_vec(),
            sbh,
        );
        let block = make(
            SegmentKind::Block,
            model.dense_layer_count(),
            builder.block().ops().to_vec(),
            workload.activation_bytes_per_layer(model),
        );
        // The head's LM GEMM reuses the (tied) embedding table: strip its
        // weight from the head's param accounting so the chain total
        // matches `ModelConfig::total_params`.
        let mut head = make(
            SegmentKind::Head,
            1,
            builder.head_graph().ops().to_vec(),
            sbh,
        );
        head.params = head.params.saturating_sub(model.hidden * model.vocab);

        let mut segments = vec![embedding, block];
        if let Some(moe) = model.moe {
            // MoE blocks: the op list's GEMM accounting sees one expert's
            // weights (the dispatch fans tokens across experts), so the
            // run's params/flops come from the model-level accounting —
            // every expert's weights stored, `top_k x capacity` expert
            // passes executed per token.
            let mut moe_block = make(
                SegmentKind::MoeBlock,
                model.moe_layer_count(),
                builder.moe_block_graph().ops().to_vec(),
                workload.activation_bytes_per_layer(model)
                    + micro_tokens
                        * moe.routed_activation_elems_per_token(model.hidden)
                        * act_dtype,
            );
            moe_block.params = model.moe_params_per_layer();
            // `make` already set output_bytes to the residual stream
            // (B x S x H) — the combine output is exactly that tensor, so
            // a pipeline cut after a MoE block moves it, not the routed
            // expert copies.
            segments.push(moe_block);
        }
        segments.push(head);
        SegmentChain { segments }
    }

    /// The run-length-compressed segments, in chain order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Total segment instances in the expanded chain (`L + 2`).
    pub fn expanded_len(&self) -> u64 {
        self.segments.iter().map(|s| s.count).sum()
    }

    /// The first segment of a kind, if present.
    pub fn find(&self, kind: SegmentKind) -> Option<&Segment> {
        self.segments.iter().find(|s| s.kind == kind)
    }

    /// Index of the first segment of a kind within [`SegmentChain::segments`].
    pub fn position(&self, kind: SegmentKind) -> Option<usize> {
        self.segments.iter().position(|s| s.kind == kind)
    }

    /// Total trained parameters across the chain (tied LM-head weight
    /// counted once, at the embedding).
    pub fn total_params(&self) -> u64 {
        self.segments.iter().map(|s| s.count * s.params).sum()
    }

    /// Rebuilds a chain from explicit runs (sub-chains produced by
    /// [`SegmentChain::slice`] go through here). Zero-count runs are
    /// dropped; adjacent runs are *not* merged — a slice preserves the
    /// run order of its parent.
    pub fn from_segments(segments: Vec<Segment>) -> Self {
        SegmentChain {
            segments: segments.into_iter().filter(|s| s.count > 0).collect(),
        }
    }

    /// The segment kind at expanded position `idx` (0-based over the
    /// `L + 2` expanded instances).
    pub fn kind_at(&self, idx: u64) -> Option<SegmentKind> {
        let mut offset = 0;
        for seg in &self.segments {
            if idx < offset + seg.count {
                return Some(seg.kind);
            }
            offset += seg.count;
        }
        None
    }

    /// The contiguous sub-chain covering expanded positions
    /// `[start, end)` — the slice of the chain a pipeline stage owns.
    /// Runs straddling the range boundary are split with adjusted counts;
    /// per-instance quantities (params, FLOPs, ops) are unchanged.
    /// Returns `None` for an empty or out-of-range window.
    pub fn slice(&self, start: u64, end: u64) -> Option<SegmentChain> {
        if start >= end || end > self.expanded_len() {
            return None;
        }
        let mut out = Vec::new();
        let mut offset = 0;
        for seg in &self.segments {
            let run_start = offset;
            let run_end = offset + seg.count;
            offset = run_end;
            let lo = run_start.max(start);
            let hi = run_end.min(end);
            if lo < hi {
                out.push(Segment {
                    count: hi - lo,
                    ..seg.clone()
                });
            }
        }
        Some(SegmentChain::from_segments(out))
    }

    /// Splits the chain into `cuts.len() + 1` contiguous stage sub-chains
    /// at the given expanded cut positions (a cut at `p` separates
    /// expanded instance `p - 1` from instance `p`). Cuts must be strictly
    /// increasing and interior (`0 < cut < expanded_len`), so every stage
    /// is non-empty and the stages partition the chain exactly — no
    /// instance lost or duplicated.
    pub fn split_at(&self, cuts: &[u64]) -> Option<Vec<SegmentChain>> {
        let len = self.expanded_len();
        let interior =
            cuts.windows(2).all(|w| w[0] < w[1]) && cuts.iter().all(|&c| c > 0 && c < len);
        if !interior {
            return None;
        }
        let mut stages = Vec::with_capacity(cuts.len() + 1);
        let mut start = 0;
        for &cut in cuts.iter().chain(std::iter::once(&len)) {
            stages.push(self.slice(start, cut)?);
            start = cut;
        }
        Some(stages)
    }

    /// The boundary activation tensor a pipeline cut at expanded position
    /// `cut` must move between stages: the *output* bytes of the producing
    /// instance (`cut - 1`) for one micro-batch. This is what an
    /// inter-wafer handoff is priced from.
    pub fn boundary_activation_bytes(&self, cut: u64) -> Option<f64> {
        if cut == 0 || cut >= self.expanded_len() {
            return None;
        }
        let mut offset = 0;
        for seg in &self.segments {
            if cut - 1 < offset + seg.count {
                return Some(seg.output_bytes);
            }
            offset += seg.count;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::ModelZoo;

    fn chain() -> (ModelConfig, SegmentChain) {
        let model = ModelZoo::gpt3_6_7b();
        let workload = Workload::for_model(&model);
        let chain = SegmentChain::for_model(&model, &workload);
        (model, chain)
    }

    #[test]
    fn chain_is_embedding_blocks_head() {
        let (model, chain) = chain();
        let kinds: Vec<SegmentKind> = chain.segments().iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![
                SegmentKind::Embedding,
                SegmentKind::Block,
                SegmentKind::Head
            ]
        );
        assert_eq!(chain.expanded_len(), model.layers + 2);
        assert_eq!(chain.segments()[1].count, model.layers);
    }

    #[test]
    fn chain_params_match_model_accounting() {
        let (model, chain) = chain();
        // Embedding holds vocab x H; blocks hold params_per_layer each; the
        // head owns only its final norm (tied GEMM weight lives at the
        // embedding). The model's total adds the final norm nowhere, so the
        // chain may exceed it by exactly that 2H.
        let slack = 2 * model.hidden;
        assert_eq!(chain.total_params(), model.total_params() + slack);
    }

    #[test]
    fn segment_kinds_have_distinct_cost_drivers() {
        let (_, chain) = chain();
        let emb = chain.find(SegmentKind::Embedding).unwrap();
        let block = chain.find(SegmentKind::Block).unwrap();
        let head = chain.find(SegmentKind::Head).unwrap();
        // The head's vocab GEMM dwarfs the embedding lookup.
        assert!(head.flops > 100.0 * emb.flops);
        // A block is GEMM-heavy but far below the vocab GEMM per instance
        // on this model (V >> 12H for GPT-3 6.7B at H=4096).
        assert!(head.flops > block.flops * 0.5);
        assert!(block.flops > emb.flops);
    }

    #[test]
    fn slices_partition_the_expanded_chain() {
        let (model, chain) = chain();
        let len = chain.expanded_len();
        // A three-way split with the cuts inside the block run.
        let cuts = [5u64, len - 1];
        let stages = chain.split_at(&cuts).expect("valid cuts");
        assert_eq!(stages.len(), 3);
        // No instance lost or duplicated, kinds preserved in order.
        let total: u64 = stages.iter().map(SegmentChain::expanded_len).sum();
        assert_eq!(total, len);
        let expanded: Vec<SegmentKind> = stages
            .iter()
            .flat_map(|s| {
                s.segments()
                    .iter()
                    .flat_map(|seg| std::iter::repeat_n(seg.kind, seg.count as usize))
            })
            .collect();
        let reference: Vec<SegmentKind> = (0..len).map(|i| chain.kind_at(i).unwrap()).collect();
        assert_eq!(expanded, reference);
        // Params are conserved across the split.
        let split_params: u64 = stages.iter().map(SegmentChain::total_params).sum();
        assert_eq!(split_params, chain.total_params());
        // First stage owns the embedding and 4 blocks; last owns the head.
        assert_eq!(stages[0].segments()[0].kind, SegmentKind::Embedding);
        assert_eq!(stages[0].segments()[1].count, 4);
        assert_eq!(stages[2].segments()[0].kind, SegmentKind::Head);
        // The middle stage holds every block the end stages did not take.
        assert_eq!(stages[1].expanded_len(), model.layers - 4);
    }

    #[test]
    fn invalid_cuts_are_rejected() {
        let (_, chain) = chain();
        let len = chain.expanded_len();
        assert!(chain.split_at(&[0]).is_none(), "cut at the chain start");
        assert!(chain.split_at(&[len]).is_none(), "cut at the chain end");
        assert!(chain.split_at(&[7, 7]).is_none(), "non-increasing cuts");
        assert!(chain.split_at(&[9, 3]).is_none(), "descending cuts");
        assert!(chain.slice(5, 5).is_none(), "empty slice");
        assert!(chain.slice(0, len + 1).is_none(), "out-of-range slice");
        // No cuts at all: one stage covering the whole chain.
        let whole = chain.split_at(&[]).unwrap();
        assert_eq!(whole.len(), 1);
        assert_eq!(whole[0], chain);
    }

    #[test]
    fn boundary_bytes_come_from_the_producer() {
        let (model, chain) = chain();
        let len = chain.expanded_len();
        // Every interior cut of the dense chain moves the residual stream.
        let sbh = chain.find(SegmentKind::Embedding).unwrap().output_bytes;
        assert!(sbh > 0.0);
        for cut in 1..len {
            assert_eq!(chain.boundary_activation_bytes(cut), Some(sbh), "{cut}");
        }
        assert_eq!(chain.boundary_activation_bytes(0), None);
        assert_eq!(chain.boundary_activation_bytes(len), None);
        // The block's stored activations are not its boundary tensor:
        // selective recompute keeps far more than one residual stream.
        let block = chain.find(SegmentKind::Block).unwrap();
        assert!(block.activation_bytes > block.output_bytes, "{model:?}");
    }

    #[test]
    fn kind_index_matches_the_canonical_ordering() {
        // `index()` must be exactly the position in `ALL`: dense, unique,
        // covering every kind — the invariant that keys per-kind cost
        // tables.
        for (i, kind) in SegmentKind::ALL.iter().enumerate() {
            assert_eq!(kind.index(), i, "{kind}");
            assert_eq!(kind.code() as usize, i, "{kind}");
        }
        let mut seen: Vec<usize> = SegmentKind::ALL.iter().map(SegmentKind::index).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..SegmentKind::ALL.len()).collect::<Vec<_>>());
    }

    #[test]
    fn moe_models_build_mixed_chains() {
        for model in ModelZoo::moe_zoo() {
            let workload = Workload::for_model(&model);
            let chain = SegmentChain::for_model(&model, &workload);
            let kinds: Vec<SegmentKind> = chain.segments().iter().map(|s| s.kind).collect();
            assert_eq!(
                kinds,
                vec![
                    SegmentKind::Embedding,
                    SegmentKind::Block,
                    SegmentKind::MoeBlock,
                    SegmentKind::Head
                ],
                "{}",
                model.name
            );
            assert_eq!(chain.expanded_len(), model.layers + 2, "{}", model.name);
            let dense = chain.find(SegmentKind::Block).unwrap();
            let moe = chain.find(SegmentKind::MoeBlock).unwrap();
            assert_eq!(dense.count, model.dense_layer_count());
            assert_eq!(moe.count, model.moe_layer_count());
            // The MoE run stores every expert's weights.
            assert_eq!(moe.params, model.moe_params_per_layer());
            assert!(moe.params > dense.params, "{}", model.name);
            // The combine output is the residual stream: a cut after any
            // MoE instance moves exactly B x S x H.
            let sbh = chain.find(SegmentKind::Embedding).unwrap().output_bytes;
            assert_eq!(moe.output_bytes, sbh, "{}", model.name);
            // Routed expert copies make the MoE block's stored activations
            // exceed the dense block's.
            assert!(moe.activation_bytes > dense.activation_bytes);
            // Chain totals match the model accounting (same 2H final-norm
            // slack as the dense chain).
            assert_eq!(
                chain.total_params(),
                model.total_params() + 2 * model.hidden,
                "{}",
                model.name
            );
        }
    }

    #[test]
    fn positions_and_lookup_agree() {
        let (_, chain) = chain();
        assert_eq!(chain.position(SegmentKind::Embedding), Some(0));
        assert_eq!(chain.position(SegmentKind::Block), Some(1));
        assert_eq!(chain.position(SegmentKind::Head), Some(2));
        assert_eq!(
            chain.find(SegmentKind::Block).map(|s| s.kind),
            Some(SegmentKind::Block)
        );
    }
}
