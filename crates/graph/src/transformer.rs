//! The Fig. 12(a) Transformer block: thirteen operators with two residual
//! spans, plus whole-model graph expansion.
//!
//! Operator layout (indices within one block):
//!
//! | # | name       | kind |
//! |---|------------|------|
//! | 0 | ln1        | LayerNorm |
//! | 1 | qkv        | Gemm `[B,S,H] x [H, H + 2*kv_dim]` (3H for MHA) |
//! | 2 | attn-prep  | head split + rotary embedding (elementwise) |
//! | 3 | qk^T       | BatchedMatmul (FlashAttention-fused) |
//! | 4 | softmax    | online softmax (fused) |
//! | 5 | score-v    | BatchedMatmul (fused) |
//! | 6 | projection | Gemm `[B,S,H] x [H,H]` |
//! | 7 | residual1  | skip add |
//! | 8 | ln2        | LayerNorm |
//! | 9 | fc1        | Gemm `[B,S,H] x [H,F]` (gated: `[H,2F]`) |
//! | 10| nonlinear  | GeLU / SiLU |
//! | 11| fc2        | Gemm `[B,S,F] x [F,H]` |
//! | 12| residual2  | skip add |
//!
//! Residual edges span 0→7 (around MHA) and 7→12 (around FFN), so one block
//! forms a single DLS segment; segment boundaries fall between blocks.

use serde::{Deserialize, Serialize};

use crate::graph::{ComputeGraph, OpId};
use crate::models::ModelConfig;
use crate::op::{OpKind, Operator};
use crate::tensor::LinearDims;
use crate::workload::Workload;

/// Attention implementation choice (§VII-A: TEMP integrates FlashAttention
/// with online softmax).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum AttentionImpl {
    /// Materialized scores + standalone softmax.
    Standard,
    /// FlashAttention: fused QK^T/softmax/ScoreV, never materializing the
    /// S x S score matrix.
    #[default]
    Flash,
}

/// Builds Transformer block/model graphs for a (model, workload) pair.
#[derive(Debug, Clone)]
pub struct TransformerBuilder<'a> {
    model: &'a ModelConfig,
    workload: &'a Workload,
    attention: AttentionImpl,
}

impl<'a> TransformerBuilder<'a> {
    /// Creates a builder with FlashAttention enabled iff the workload asks
    /// for it.
    pub fn new(model: &'a ModelConfig, workload: &'a Workload) -> Self {
        let attention = if workload.flash_attention {
            AttentionImpl::Flash
        } else {
            AttentionImpl::Standard
        };
        TransformerBuilder {
            model,
            workload,
            attention,
        }
    }

    /// Overrides the attention implementation.
    pub fn with_attention(mut self, attention: AttentionImpl) -> Self {
        self.attention = attention;
        self
    }

    /// One Fig. 12(a) block (13 operators, 2 residual spans).
    pub fn block(&self) -> ComputeGraph {
        let mut g = ComputeGraph::new();
        self.append_block(&mut g, None);
        g
    }

    /// The embedding segment: token lookup into the `vocab x H` table plus
    /// the positional/embedding-dropout elementwise pass. Built at the
    /// global batch like [`TransformerBuilder::block`]; the cost model
    /// applies per-die sharding.
    pub fn embedding_graph(&self) -> ComputeGraph {
        let m = self.model;
        let w = self.workload;
        let tokens = w.global_batch * w.seq_len;
        let mut g = ComputeGraph::new();
        let embed = g.add_op(Operator::new(
            "embed",
            OpKind::Embedding {
                tokens,
                hidden: m.hidden,
                vocab: m.vocab,
            },
        ));
        let drop = g.add_op(Operator::new(
            "embed-drop",
            OpKind::Activation {
                elems: tokens * m.hidden,
            },
        ));
        g.add_edge(embed, drop).expect("forward edge");
        g
    }

    /// The LM-head segment: final norm, the `[B,S,H] x [H,V]` logits GEMM
    /// (weight tied to the embedding table) and the cross-entropy softmax
    /// over the vocabulary.
    pub fn head_graph(&self) -> ComputeGraph {
        let m = self.model;
        let w = self.workload;
        let (b, s) = (w.global_batch, w.seq_len);
        let tokens = b * s;
        let mut g = ComputeGraph::new();
        let ln = g.add_op(Operator::new(
            "final-ln",
            OpKind::LayerNorm {
                tokens,
                hidden: m.hidden,
            },
        ));
        let logits = g.add_op(Operator::new(
            "lm-head",
            OpKind::Gemm(LinearDims::new(b, s, m.hidden, m.vocab)),
        ));
        let ce = g.add_op(Operator::new(
            "ce-softmax",
            OpKind::Softmax {
                rows: tokens,
                cols: m.vocab,
            },
        ));
        g.add_edge(ln, logits).expect("forward edge");
        g.add_edge(logits, ce).expect("forward edge");
        g
    }

    /// One Mixture-of-Experts block: the dense attention path, then a
    /// router GEMM (`[B,S,H] x [H,E]`), the gate softmax, the token
    /// dispatch, the expert FFN pass over the `top_k x capacity_factor`
    /// routed token copies, and the combine back into the residual
    /// stream. Expert GEMMs are built with **one** expert's weight matrix
    /// (each routed token multiplies exactly one expert's weights), so
    /// the op list's FLOP accounting is exact while the *stored* expert
    /// parameters (`E` sets of weights) are accounted at the segment
    /// level.
    ///
    /// Falls back to the dense block when the model has no
    /// [`MoeConfig`](crate::models::MoeConfig).
    pub fn moe_block_graph(&self) -> ComputeGraph {
        let Some(moe) = self.model.moe else {
            return self.block();
        };
        let m = self.model;
        let w = self.workload;
        let (b, s, h) = (w.global_batch, w.seq_len, m.hidden);
        let tokens = b * s;
        let mut g = ComputeGraph::new();
        let res1 = self.append_attention(&mut g, None);
        let ln2 = g.add_op(Operator::new(
            "ln2",
            OpKind::LayerNorm { tokens, hidden: h },
        ));
        let router = g.add_op(Operator::new(
            "router",
            OpKind::Gemm(LinearDims::new(b, s, h, moe.num_experts)),
        ));
        let gate = g.add_op(Operator::new(
            "gate-softmax",
            OpKind::Softmax {
                rows: tokens,
                cols: moe.num_experts,
            },
        ));
        // Routed token copies per sequence: top_k experts per token, padded
        // by the capacity factor.
        let s_routed = ((s * moe.top_k) as f64 * moe.capacity_factor).ceil() as u64;
        let dispatch = g.add_op(Operator::new(
            "dispatch",
            OpKind::Activation {
                elems: b * s_routed * h,
            },
        ));
        let fc1 = g.add_op(Operator::new(
            "expert-fc1",
            OpKind::Gemm(LinearDims::new(b, s_routed, h, 2 * moe.expert_ffn_hidden)),
        ));
        let act = g.add_op(Operator::new(
            "expert-nonlinear",
            OpKind::Activation {
                elems: b * s_routed * moe.expert_ffn_hidden,
            },
        ));
        let fc2 = g.add_op(Operator::new(
            "expert-fc2",
            OpKind::Gemm(LinearDims::new(b, s_routed, moe.expert_ffn_hidden, h)),
        ));
        let combine = g.add_op(Operator::new(
            "combine",
            OpKind::Activation {
                elems: b * s_routed * h,
            },
        ));
        let res2 = g.add_op(Operator::new(
            "residual2",
            OpKind::Residual { elems: tokens * h },
        ));
        for e in [
            (res1, ln2),
            (ln2, router),
            (router, gate),
            (gate, dispatch),
            (dispatch, fc1),
            (fc1, act),
            (act, fc2),
            (fc2, combine),
            (combine, res2),
        ] {
            g.add_edge(e.0, e.1).expect("forward edge");
        }
        g.add_residual_edge(res1, res2).expect("residual edge");
        g
    }

    /// A full model graph of `blocks` chained blocks. Residual sources chain
    /// correctly across blocks (block i's MHA skip starts at block i-1's
    /// final residual).
    pub fn model_graph(&self, blocks: u64) -> ComputeGraph {
        let mut g = ComputeGraph::new();
        let mut prev_out: Option<OpId> = None;
        for _ in 0..blocks {
            prev_out = Some(self.append_block(&mut g, prev_out));
        }
        g
    }

    /// Appends one block; returns the id of its final residual op.
    fn append_block(&self, g: &mut ComputeGraph, prev_out: Option<OpId>) -> OpId {
        let m = self.model;
        let w = self.workload;
        let (b, s, h) = (w.global_batch, w.seq_len, m.hidden);
        let ffn = m.ffn_hidden;
        let tokens = b * s;
        let res1 = self.append_attention(g, prev_out);
        let ln2 = g.add_op(Operator::new(
            "ln2",
            OpKind::LayerNorm { tokens, hidden: h },
        ));
        let fc1_k = if m.gated_ffn { 2 * ffn } else { ffn };
        let fc1 = g.add_op(Operator::new(
            "fc1",
            OpKind::Gemm(LinearDims::new(b, s, h, fc1_k)),
        ));
        let act = g.add_op(Operator::new(
            "nonlinear",
            OpKind::Activation {
                elems: tokens * ffn,
            },
        ));
        let fc2 = g.add_op(Operator::new(
            "fc2",
            OpKind::Gemm(LinearDims::new(b, s, ffn, h)),
        ));
        let res2 = g.add_op(Operator::new(
            "residual2",
            OpKind::Residual { elems: tokens * h },
        ));
        for e in [(res1, ln2), (ln2, fc1), (fc1, act), (act, fc2), (fc2, res2)] {
            g.add_edge(e.0, e.1).expect("forward edge");
        }
        // FFN residual span (the MHA span was anchored by
        // `append_attention`).
        g.add_residual_edge(res1, res2).expect("residual edge");
        res2
    }

    /// Appends the attention half of a block (ln1 through residual1);
    /// returns the id of the MHA residual op. Shared by the dense block
    /// and the MoE block, which differ only in their FFN path.
    fn append_attention(&self, g: &mut ComputeGraph, prev_out: Option<OpId>) -> OpId {
        let m = self.model;
        let w = self.workload;
        let (b, s, h) = (w.global_batch, w.seq_len, m.hidden);
        let heads = m.heads;
        let dh = m.head_dim();
        let fused = self.attention == AttentionImpl::Flash;

        let tokens = b * s;
        let ln1 = g.add_op(Operator::new(
            "ln1",
            OpKind::LayerNorm { tokens, hidden: h },
        ));
        if let Some(p) = prev_out {
            g.add_edge(p, ln1).expect("forward edge");
        }
        // QKV width: H for queries plus 2 * kv_dim for keys/values (GQA).
        let qkv_width = h + 2 * m.kv_dim();
        let qkv = g.add_op(Operator::new(
            "qkv",
            OpKind::Gemm(LinearDims::new(b, s, h, qkv_width)),
        ));
        let prep = g.add_op(Operator::new(
            "attn-prep",
            OpKind::Activation {
                elems: tokens * qkv_width,
            },
        ));
        let mut qkt = Operator::new(
            "qk^T",
            OpKind::BatchedMatmul(LinearDims::new(b * heads, s, dh, s)),
        );
        let mut sm = Operator::new(
            "softmax",
            OpKind::Softmax {
                rows: b * heads * s,
                cols: s,
            },
        );
        let mut sv = Operator::new(
            "score-v",
            OpKind::BatchedMatmul(LinearDims::new(b * heads, s, s, dh)),
        );
        if fused {
            qkt = qkt.fused();
            sm = sm.fused();
            sv = sv.fused();
        }
        let qkt = g.add_op(qkt);
        let sm = g.add_op(sm);
        let sv = g.add_op(sv);
        let proj = g.add_op(Operator::new(
            "projection",
            OpKind::Gemm(LinearDims::new(b, s, h, h)),
        ));
        let res1 = g.add_op(Operator::new(
            "residual1",
            OpKind::Residual { elems: tokens * h },
        ));

        // Sequential dataflow.
        for w in [
            (ln1, qkv),
            (qkv, prep),
            (prep, qkt),
            (qkt, sm),
            (sm, sv),
            (sv, proj),
            (proj, res1),
        ] {
            g.add_edge(w.0, w.1).expect("forward edge");
        }
        // Residual span around MHA (ln1 -> residual1). The MHA skip's true
        // source is the block input, but that value is exactly the tensor
        // already crossing the block boundary on the sequential edge, so
        // anchoring the span at ln1 keeps segmentation cuts legal at block
        // boundaries — which is the granularity the DLS graph partition
        // exploits.
        g.add_residual_edge(ln1, res1).expect("residual edge");
        res1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::ModelZoo;

    fn setup() -> (ModelConfig, Workload) {
        (ModelZoo::gpt3_6_7b(), Workload::training(8, 2048))
    }

    #[test]
    fn block_has_13_operators() {
        let (m, w) = setup();
        let g = TransformerBuilder::new(&m, &w).block();
        assert_eq!(g.op_count(), 13);
    }

    #[test]
    fn block_forms_one_segment() {
        let (m, w) = setup();
        let g = TransformerBuilder::new(&m, &w).block();
        assert_eq!(g.segments(), vec![0..13]);
    }

    #[test]
    fn model_graph_has_one_segment_per_block() {
        let (m, w) = setup();
        let g = TransformerBuilder::new(&m, &w).model_graph(4);
        assert_eq!(g.op_count(), 52);
        let segs = g.segments();
        assert_eq!(segs.len(), 4);
        assert!(segs.iter().all(|s| s.len() == 13));
    }

    #[test]
    fn block_params_match_model_accounting() {
        let (m, w) = setup();
        let g = TransformerBuilder::new(&m, &w).block();
        // Graph carries QKV + proj + FFN weights + 2 norms = params_per_layer.
        assert_eq!(g.total_params(), m.params_per_layer());
    }

    #[test]
    fn gated_ffn_widens_fc1() {
        let m = ModelZoo::llama2_7b();
        let w = Workload::training(8, 4096);
        let g = TransformerBuilder::new(&m, &w).block();
        let fc1 = g.ops().iter().find(|o| o.name == "fc1").unwrap();
        let dims = fc1.kind.linear_dims().unwrap();
        assert_eq!(dims.k, 2 * m.ffn_hidden);
        assert_eq!(g.total_params(), m.params_per_layer());
    }

    #[test]
    fn flash_attention_marks_fused_ops() {
        let (m, w) = setup();
        let g = TransformerBuilder::new(&m, &w)
            .with_attention(AttentionImpl::Flash)
            .block();
        let fused: Vec<&str> = g
            .ops()
            .iter()
            .filter(|o| o.fused)
            .map(|o| o.name.as_str())
            .collect();
        assert_eq!(fused, vec!["qk^T", "softmax", "score-v"]);
        let std = TransformerBuilder::new(&m, &w)
            .with_attention(AttentionImpl::Standard)
            .block();
        assert!(std.ops().iter().all(|o| !o.fused));
    }

    #[test]
    fn attention_flops_scale_quadratically_with_seq() {
        let m = ModelZoo::gpt3_6_7b();
        let w2k = Workload::training(8, 2048);
        let w4k = Workload::training(8, 4096);
        let f = |w: &Workload| {
            TransformerBuilder::new(&m, w)
                .block()
                .ops()
                .iter()
                .find(|o| o.name == "qk^T")
                .unwrap()
                .flops()
        };
        let ratio = f(&w4k) / f(&w2k);
        assert!((ratio - 4.0).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn embedding_graph_owns_the_table() {
        let (m, w) = setup();
        let g = TransformerBuilder::new(&m, &w).embedding_graph();
        assert_eq!(g.op_count(), 2);
        assert_eq!(g.total_params(), m.vocab * m.hidden);
    }

    #[test]
    fn head_graph_is_norm_gemm_softmax() {
        let (m, w) = setup();
        let g = TransformerBuilder::new(&m, &w).head_graph();
        assert_eq!(g.op_count(), 3);
        let gemm = g.ops().iter().find(|o| o.name == "lm-head").unwrap();
        let dims = gemm.kind.linear_dims().unwrap();
        assert_eq!(dims.n, m.hidden);
        assert_eq!(dims.k, m.vocab);
        // Tied weight: the head graph carries the vocab x H matrix (the
        // chain-level accounting de-duplicates it against the embedding).
        assert_eq!(g.total_params(), m.vocab * m.hidden + 2 * m.hidden);
    }

    #[test]
    fn moe_block_graph_routes_and_combines() {
        let m = ModelZoo::mixtral_8x7b();
        let w = Workload::training(8, 4096);
        let g = TransformerBuilder::new(&m, &w).moe_block_graph();
        // Attention (8 ops) + ln2 + router/gate/dispatch + expert FFN (3)
        // + combine + residual2.
        assert_eq!(g.op_count(), 17);
        let moe = m.moe.unwrap();
        let router = g.ops().iter().find(|o| o.name == "router").unwrap();
        assert_eq!(router.kind.linear_dims().unwrap().k, moe.num_experts);
        // Expert GEMMs carry one expert's weights and the routed
        // (top_k x capacity) token copies.
        let fc1 = g.ops().iter().find(|o| o.name == "expert-fc1").unwrap();
        let dims = fc1.kind.linear_dims().unwrap();
        assert_eq!(dims.k, 2 * moe.expert_ffn_hidden);
        let s_routed = ((w.seq_len * moe.top_k) as f64 * moe.capacity_factor).ceil() as u64;
        assert_eq!(dims.m, s_routed);
        // One expert's FFN weights + attention + router + norms.
        let one_expert = 3 * m.hidden * moe.expert_ffn_hidden;
        assert_eq!(
            g.total_params(),
            m.attn_params_per_layer() + m.hidden * moe.num_experts + one_expert
        );
        // A dense model falls back to the dense block.
        let dense = ModelZoo::gpt3_6_7b();
        let wd = Workload::training(8, 2048);
        let fallback = TransformerBuilder::new(&dense, &wd).moe_block_graph();
        assert_eq!(fallback.op_count(), 13);
    }

    #[test]
    fn chained_blocks_connect() {
        let (m, w) = setup();
        let g = TransformerBuilder::new(&m, &w).model_graph(2);
        // Block 1's ln1 (op 13) must be fed by block 0's residual2 (op 12).
        assert!(g.edges().contains(&(OpId(12), OpId(13))));
    }
}
