//! Operator kinds and their FLOP/footprint accounting.
//!
//! TEMP's cost model (§VII-A) covers "essential computational operators such
//! as GEMM, Softmax, GeLU" plus the attention-specific GEMMs. Each operator
//! reports FLOPs and byte footprints; GEMM-like operators expose their
//! (B, M, N, K) dims for the partitioning machinery.

use serde::{Deserialize, Serialize};

use crate::tensor::{DType, LinearDims};

/// The operator vocabulary of the Fig. 12(a) Transformer block.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OpKind {
    /// Dense matrix multiply `O[B,M,K] = I[B,M,N] x W[N,K]` with trained
    /// weights (QKV projection, output projection, FC1, FC2).
    Gemm(LinearDims),
    /// Weightless batched matmul between two activations (attention
    /// `Q x K^T` and `Score x V`); `dims.b` folds batch x heads.
    BatchedMatmul(LinearDims),
    /// Row-wise softmax over `rows` rows of `cols` elements (attention
    /// scores). With online softmax/FlashAttention this is fused and never
    /// materialized.
    Softmax {
        /// Number of independent rows.
        rows: u64,
        /// Elements per row.
        cols: u64,
    },
    /// LayerNorm/RMSNorm over `tokens` tokens of width `hidden`.
    LayerNorm {
        /// Token count (batch x sequence).
        tokens: u64,
        /// Hidden width.
        hidden: u64,
    },
    /// Elementwise activation function (GeLU/SiLU) over `elems` elements.
    Activation {
        /// Element count.
        elems: u64,
    },
    /// Residual addition over `elems` elements.
    Residual {
        /// Element count.
        elems: u64,
    },
    /// Token embedding lookup (and, transposed, the LM head).
    Embedding {
        /// Token count.
        tokens: u64,
        /// Hidden width.
        hidden: u64,
        /// Vocabulary size.
        vocab: u64,
    },
}

impl OpKind {
    /// Floating-point operations of the operator.
    pub fn flops(&self) -> f64 {
        match self {
            OpKind::Gemm(d) | OpKind::BatchedMatmul(d) => d.flops(),
            // exp + sum + div per element, ~5 flops each.
            OpKind::Softmax { rows, cols } => 5.0 * (*rows as f64) * (*cols as f64),
            // mean/var/normalize ~8 flops per element.
            OpKind::LayerNorm { tokens, hidden } => 8.0 * (*tokens as f64) * (*hidden as f64),
            // tanh-approximated GeLU ~10 flops per element.
            OpKind::Activation { elems } => 10.0 * (*elems as f64),
            OpKind::Residual { elems } => *elems as f64,
            // Lookup is bandwidth-bound; count the copy.
            OpKind::Embedding { tokens, hidden, .. } => (*tokens as f64) * (*hidden as f64),
        }
    }

    /// Bytes of trained parameters owned by this operator.
    pub fn weight_bytes(&self, dtype: DType) -> f64 {
        match self {
            OpKind::Gemm(d) => d.weight_bytes(dtype),
            OpKind::LayerNorm { hidden, .. } => (2 * hidden * dtype.bytes()) as f64,
            OpKind::Embedding { hidden, vocab, .. } => (hidden * vocab * dtype.bytes()) as f64,
            _ => 0.0,
        }
    }

    /// Number of trained parameters owned by this operator.
    pub fn weight_params(&self) -> u64 {
        match self {
            OpKind::Gemm(d) => d.weight_params(),
            OpKind::LayerNorm { hidden, .. } => 2 * hidden,
            OpKind::Embedding { hidden, vocab, .. } => hidden * vocab,
            _ => 0,
        }
    }

    /// Bytes of the primary input activation.
    pub fn input_bytes(&self, dtype: DType) -> f64 {
        let e = dtype.bytes() as f64;
        match self {
            OpKind::Gemm(d) | OpKind::BatchedMatmul(d) => d.input_bytes(dtype),
            OpKind::Softmax { rows, cols } => (*rows as f64) * (*cols as f64) * e,
            OpKind::LayerNorm { tokens, hidden } => (*tokens as f64) * (*hidden as f64) * e,
            OpKind::Activation { elems } | OpKind::Residual { elems } => (*elems as f64) * e,
            OpKind::Embedding { tokens, .. } => (*tokens as f64) * 4.0, // int32 ids
        }
    }

    /// Bytes of the output activation.
    pub fn output_bytes(&self, dtype: DType) -> f64 {
        let e = dtype.bytes() as f64;
        match self {
            OpKind::Gemm(d) | OpKind::BatchedMatmul(d) => d.output_bytes(dtype),
            OpKind::Softmax { rows, cols } => (*rows as f64) * (*cols as f64) * e,
            OpKind::LayerNorm { tokens, hidden } => (*tokens as f64) * (*hidden as f64) * e,
            OpKind::Activation { elems } | OpKind::Residual { elems } => (*elems as f64) * e,
            OpKind::Embedding { tokens, hidden, .. } => (*tokens as f64) * (*hidden as f64) * e,
        }
    }

    /// The (B, M, N, K) dims if this operator is GEMM-like (partitionable by
    /// the unified representation), else `None`.
    pub fn linear_dims(&self) -> Option<LinearDims> {
        match self {
            OpKind::Gemm(d) | OpKind::BatchedMatmul(d) => Some(*d),
            _ => None,
        }
    }

    /// Whether the operator carries trained weights.
    pub fn has_weights(&self) -> bool {
        self.weight_params() > 0
    }

    /// Whether this operator is compute-bound (GEMM-like) rather than
    /// bandwidth-bound (elementwise/softmax/norm).
    pub fn is_compute_bound(&self) -> bool {
        matches!(self, OpKind::Gemm(_) | OpKind::BatchedMatmul(_))
    }
}

/// A named operator node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Operator {
    /// Human-readable name ("qkv", "softmax", "fc1", ...).
    pub name: String,
    /// Operator kind with dimensions.
    pub kind: OpKind,
    /// Whether FlashAttention-style fusion covers this operator (fused
    /// attention never materializes the S x S score matrix; §VII-A).
    pub fused: bool,
}

impl Operator {
    /// Creates an unfused operator.
    pub fn new(name: impl Into<String>, kind: OpKind) -> Self {
        Operator {
            name: name.into(),
            kind,
            fused: false,
        }
    }

    /// Marks the operator as covered by FlashAttention fusion.
    pub fn fused(mut self) -> Self {
        self.fused = true;
        self
    }

    /// Forward-pass FLOPs.
    pub fn flops(&self) -> f64 {
        self.kind.flops()
    }

    /// Training-step FLOPs: forward + backward (~2x forward for GEMMs:
    /// dI and dW each cost one forward-equivalent).
    pub fn training_flops(&self) -> f64 {
        if self.kind.is_compute_bound() {
            3.0 * self.kind.flops()
        } else {
            2.0 * self.kind.flops()
        }
    }
}

impl std::fmt::Display for Operator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}({:?})", self.name, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_accounting_matches_dims() {
        let d = LinearDims::new(1, 2048, 4096, 4096);
        let op = Operator::new("proj", OpKind::Gemm(d));
        assert!((op.flops() - d.flops()).abs() < 1.0);
        assert_eq!(op.kind.weight_params(), 4096 * 4096);
        assert!(op.kind.has_weights());
        assert!(op.kind.is_compute_bound());
        assert_eq!(op.kind.linear_dims(), Some(d));
    }

    #[test]
    fn batched_matmul_has_no_weights() {
        let d = LinearDims::new(32 * 16, 2048, 64, 2048);
        let op = OpKind::BatchedMatmul(d);
        assert!(!op.has_weights());
        assert_eq!(op.weight_bytes(DType::F16), 0.0);
        assert!(op.is_compute_bound());
    }

    #[test]
    fn softmax_is_bandwidth_bound() {
        let op = OpKind::Softmax {
            rows: 1024,
            cols: 2048,
        };
        assert!(!op.is_compute_bound());
        assert!(op.flops() > 0.0);
        assert_eq!(op.linear_dims(), None);
    }

    #[test]
    fn layernorm_owns_two_h_params() {
        let op = OpKind::LayerNorm {
            tokens: 4096,
            hidden: 1024,
        };
        assert_eq!(op.weight_params(), 2048);
    }

    #[test]
    fn embedding_weight_is_vocab_by_hidden() {
        let op = OpKind::Embedding {
            tokens: 2048,
            hidden: 4096,
            vocab: 50000,
        };
        assert_eq!(op.weight_params(), 4096 * 50000);
        assert!(op.output_bytes(DType::F16) > op.input_bytes(DType::F16));
    }

    #[test]
    fn training_flops_triple_forward_for_gemm() {
        let d = LinearDims::new(1, 128, 128, 128);
        let op = Operator::new("g", OpKind::Gemm(d));
        assert!((op.training_flops() - 3.0 * op.flops()).abs() < 1.0);
        let sm = Operator::new("s", OpKind::Softmax { rows: 8, cols: 8 });
        assert!((sm.training_flops() - 2.0 * sm.flops()).abs() < 1.0);
    }

    #[test]
    fn fused_builder_sets_flag() {
        let d = LinearDims::new(1, 8, 8, 8);
        let op = Operator::new("qk", OpKind::BatchedMatmul(d)).fused();
        assert!(op.fused);
    }
}
