//! # temp-serve — concurrent plan serving over the TEMP solver
//!
//! The ROADMAP's production-serving direction: a [`PlanServer`] holds
//! one cross-model [`ContextPool`] per wafer configuration and answers
//! **mapping queries** — model + wafer config + objective — over a
//! line-delimited text protocol (stdin or a TCP socket, see the
//! `temp-serve` binary). Every solve multiplexes onto the shared
//! [`temp_solver::runtime::global`] work-stealing pool; per-query
//! deadlines install a per-solve
//! [`temp_solver::runtime::CancelToken`] so a slow query degrades to a
//! best-effort plan instead of stalling the server.
//!
//! Concurrency is the point: simultaneous queries for the same model
//! share one [`temp_solver::search::SearchContext`], whose single-flight
//! evaluation coalescing makes N identical in-flight queries cost
//! barely more exact evaluations than one. The server's
//! [`PlanServer::stats_json`] exposes the duplicate-work ratio (total
//! exact evals ÷ distinct keys) that the `serve_load` driver gates on.
//!
//! Warm restarts: [`PlanServer::new`] pointed at a cache directory
//! imports every matching `cache-<fingerprint>.txt` on startup, and
//! [`PlanServer::save`] (the binary calls it on shutdown) persists every
//! pooled context back — atomically, temp-file + rename — so a
//! restarted server answers the whole fig13 zoo with **zero** exact
//! evaluations.
//!
//! ## Protocol
//!
//! One request per line, one single-line JSON reply per request:
//!
//! ```text
//! solve <model> [wafer=hpca|fig3|WxH] [engine=tcme|smap|gmap]
//!               [deadline_ms=<n>] [objective=step_time|throughput|power_eff]
//! stats      -> pool-wide counters (evals, unique keys, coalesced, ...)
//! save       -> persist caches now
//! ping       -> liveness probe
//! shutdown   -> save (when a cache dir is set) and stop serving
//! ```
//!
//! Blank lines and `#` comments are ignored. Replies are `{"ok":true,...}`
//! or `{"ok":false,"error":"..."}`.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use temp_graph::models::{ModelConfig, ModelZoo};
use temp_graph::workload::Workload;
use temp_mapping::engines::MappingEngine;
use temp_solver::pool::ContextPool;
use temp_solver::search::SearchStats;
use temp_wsc::config::WaferConfig;

/// Model slugs the protocol accepts, with their zoo constructors.
/// The first [`FIG13_ZOO`] entries are the fig13 seven-system zoo's
/// models (table 2); the tail adds the MoE zoo heads.
type ModelCtor = fn() -> ModelConfig;

const ZOO: &[(&str, ModelCtor)] = &[
    ("gpt3_6_7b", ModelZoo::gpt3_6_7b),
    ("llama2_7b", ModelZoo::llama2_7b),
    ("llama3_70b", ModelZoo::llama3_70b),
    ("gpt3_76b", ModelZoo::gpt3_76b),
    ("gpt3_175b", ModelZoo::gpt3_175b),
    ("opt_175b", ModelZoo::opt_175b),
    ("mixtral_8x7b", ModelZoo::mixtral_8x7b),
    ("deepseek_moe_16b", ModelZoo::deepseek_moe_16b),
];

/// How many leading [`zoo_slugs`] entries form the fig13 (table 2) zoo.
pub const FIG13_ZOO: usize = 6;

/// Every model slug the protocol accepts.
pub fn zoo_slugs() -> Vec<&'static str> {
    ZOO.iter().map(|(slug, _)| *slug).collect()
}

/// The fig13 zoo slugs (table 2's six dense models).
pub fn fig13_slugs() -> Vec<&'static str> {
    ZOO[..FIG13_ZOO].iter().map(|(slug, _)| *slug).collect()
}

/// The model behind a protocol slug.
pub fn model_by_slug(slug: &str) -> Option<ModelConfig> {
    ZOO.iter()
        .find(|(s, _)| *s == slug)
        .map(|(_, build)| build())
}

/// Which report metric a query ranks by in its reply's `score` field.
/// The solver always minimizes step time; the objective selects what the
/// caller reads off the solved plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Objective {
    /// Seconds per optimizer step (lower is better). The default.
    #[default]
    StepTime,
    /// Training throughput in tokens/s (higher is better).
    Throughput,
    /// Tokens/s per watt (higher is better).
    PowerEfficiency,
}

impl Objective {
    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "step_time" => Ok(Objective::StepTime),
            "throughput" => Ok(Objective::Throughput),
            "power_eff" | "power_efficiency" => Ok(Objective::PowerEfficiency),
            other => Err(format!("unknown objective {other:?}")),
        }
    }

    fn name(self) -> &'static str {
        match self {
            Objective::StepTime => "step_time",
            Objective::Throughput => "throughput",
            Objective::PowerEfficiency => "power_eff",
        }
    }
}

/// One parsed `solve` request.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Model slug (see [`zoo_slugs`]).
    pub model: String,
    /// Wafer configuration key (`hpca` or `fig3`).
    pub wafer: String,
    /// Mapping engine to plan with.
    pub engine: MappingEngine,
    /// Optional wall-clock budget; an expired budget returns the best
    /// effort plan with `"timed_out":true`.
    pub deadline_ms: Option<u64>,
    /// Which metric the reply's `score` field carries.
    pub objective: Objective,
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Plan a model (`solve ...`).
    Solve(Query),
    /// Pool-wide counters.
    Stats,
    /// Persist caches now.
    Save,
    /// Liveness probe.
    Ping,
    /// Save (if configured) and stop serving.
    Shutdown,
}

impl Request {
    /// Parses one protocol line. Blank lines and `#` comments parse to
    /// [`Request::Ping`]-free `Err` — callers should skip them first
    /// with [`is_noise`].
    pub fn parse(line: &str) -> Result<Request, String> {
        let mut tokens = line.split_whitespace();
        let verb = tokens.next().ok_or("empty request")?;
        match verb {
            "stats" => Ok(Request::Stats),
            "save" => Ok(Request::Save),
            "ping" => Ok(Request::Ping),
            "quit" | "shutdown" => Ok(Request::Shutdown),
            "solve" => {
                let model = tokens
                    .next()
                    .ok_or("solve needs a model slug (e.g. `solve gpt3_6_7b`)")?
                    .to_string();
                let mut query = Query {
                    model,
                    wafer: "hpca".to_string(),
                    engine: MappingEngine::Tcme,
                    deadline_ms: None,
                    objective: Objective::StepTime,
                };
                for opt in tokens {
                    let (key, value) = opt
                        .split_once('=')
                        .ok_or_else(|| format!("malformed option {opt:?} (want key=value)"))?;
                    match key {
                        "wafer" => {
                            wafer_config(value)?;
                            query.wafer = value.to_string();
                        }
                        "engine" => {
                            query.engine = match value {
                                "tcme" => MappingEngine::Tcme,
                                "smap" => MappingEngine::SMap,
                                "gmap" => MappingEngine::GMap,
                                other => return Err(format!("unknown engine {other:?}")),
                            }
                        }
                        "deadline_ms" => {
                            let ms: u64 = value
                                .parse()
                                .map_err(|e| format!("bad deadline_ms {value:?}: {e}"))?;
                            query.deadline_ms = Some(ms);
                        }
                        "objective" => query.objective = Objective::parse(value)?,
                        other => return Err(format!("unknown option {other:?}")),
                    }
                }
                Ok(Request::Solve(query))
            }
            other => Err(format!(
                "unknown request {other:?} (want solve/stats/save/ping/shutdown)"
            )),
        }
    }
}

/// Whether a protocol line carries no request (blank or `#` comment).
pub fn is_noise(line: &str) -> bool {
    let trimmed = line.trim();
    trimmed.is_empty() || trimmed.starts_with('#')
}

/// Resolves a protocol wafer key: `hpca` (the 8x4 evaluation wafer),
/// `fig3` (the 6x8 reference array — note its 48 dies admit no
/// power-of-two parallel tuples, so solves on it report
/// `NoFeasiblePlan`), or a custom `WxH` array such as `4x4`.
pub fn wafer_config(key: &str) -> Result<WaferConfig, String> {
    match key {
        "hpca" => Ok(WaferConfig::hpca()),
        "fig3" => Ok(WaferConfig::fig3()),
        custom => {
            let (w, h) = custom
                .split_once('x')
                .ok_or_else(|| format!("unknown wafer {custom:?} (want hpca, fig3, or WxH)"))?;
            let w: u32 = w.parse().map_err(|_| format!("bad wafer width {w:?}"))?;
            let h: u32 = h.parse().map_err(|_| format!("bad wafer height {h:?}"))?;
            WaferConfig::with_array(w, h).map_err(|e| e.to_string())
        }
    }
}

/// Minimal JSON string escaping for error messages and labels.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// An `{"ok":false,...}` reply.
pub fn error_reply(message: &str) -> String {
    format!("{{\"ok\":false,\"error\":\"{}\"}}", json_escape(message))
}

/// What [`PlanServer::handle_line`] wants done with its reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Write the reply and keep serving.
    Reply(String),
    /// Write the reply, then stop serving (caches already saved).
    Quit(String),
}

impl Response {
    /// The reply line either way.
    pub fn text(&self) -> &str {
        match self {
            Response::Reply(s) | Response::Quit(s) => s,
        }
    }
}

/// The serving core: per-wafer context pools, query counters, optional
/// warm-start directory. Shared behind an `Arc`, every method takes
/// `&self` — connection handlers and load-driver clients call
/// [`PlanServer::handle_line`] concurrently.
#[derive(Debug)]
pub struct PlanServer {
    pools: Mutex<HashMap<String, Arc<ContextPool>>>,
    cache_dir: Option<PathBuf>,
    queries: AtomicU64,
    errors: AtomicU64,
    timeouts: AtomicU64,
}

impl PlanServer {
    /// A server with an empty (cold) pool set. With `cache_dir` set, the
    /// default `hpca` pool is created immediately and warm-imports any
    /// matching cache files the directory already holds; the directory
    /// is created if missing so the shutdown save always has a home.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from creating or reading the cache
    /// directory.
    pub fn new(cache_dir: Option<&Path>) -> std::io::Result<Self> {
        let server = PlanServer {
            pools: Mutex::new(HashMap::new()),
            cache_dir: cache_dir.map(Path::to_path_buf),
            queries: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
        };
        if let Some(dir) = &server.cache_dir {
            std::fs::create_dir_all(dir)?;
            server.pool("hpca").map_err(std::io::Error::other)?;
        }
        Ok(server)
    }

    /// The pool for a wafer key, built (and warm-imported) on demand.
    fn pool(&self, wafer: &str) -> Result<Arc<ContextPool>, String> {
        let config = wafer_config(wafer)?;
        let mut pools = self.pools.lock().expect("pools lock");
        if let Some(pool) = pools.get(wafer) {
            return Ok(Arc::clone(pool));
        }
        let pool = Arc::new(ContextPool::new(config));
        if let Some(dir) = &self.cache_dir {
            // Fingerprints embed the wafer, so one shared directory
            // serves every pool; files for other wafers never match.
            pool.load_from(dir).map_err(|e| e.to_string())?;
        }
        pools.insert(wafer.to_string(), Arc::clone(&pool));
        Ok(pool)
    }

    /// Handles one protocol line. Safe to call from many threads; solves
    /// for the same `(model, workload)` share one context and coalesce
    /// duplicate in-flight evaluations.
    pub fn handle_line(&self, line: &str) -> Response {
        let request = match Request::parse(line) {
            Ok(request) => request,
            Err(e) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                return Response::Reply(error_reply(&e));
            }
        };
        match request {
            Request::Solve(query) => Response::Reply(match self.solve(&query) {
                Ok(reply) => reply,
                Err(e) => {
                    self.errors.fetch_add(1, Ordering::Relaxed);
                    error_reply(&e)
                }
            }),
            Request::Stats => Response::Reply(self.stats_json()),
            Request::Ping => Response::Reply("{\"ok\":true,\"pong\":true}".to_string()),
            Request::Save => Response::Reply(match self.save() {
                Ok(saved) => format!("{{\"ok\":true,\"saved\":{saved}}}"),
                Err(e) => {
                    self.errors.fetch_add(1, Ordering::Relaxed);
                    error_reply(&e.to_string())
                }
            }),
            Request::Shutdown => {
                let saved = self.save().unwrap_or_default();
                Response::Quit(format!(
                    "{{\"ok\":true,\"shutdown\":true,\"saved\":{saved}}}"
                ))
            }
        }
    }

    /// Plans one query and renders its reply line.
    ///
    /// # Errors
    ///
    /// Unknown slugs/wafers and infeasible models come back as the error
    /// string for an `{"ok":false}` reply.
    pub fn solve(&self, query: &Query) -> Result<String, String> {
        let model = model_by_slug(&query.model)
            .ok_or_else(|| format!("unknown model {:?} (see `stats` for slugs)", query.model))?;
        let workload = Workload::for_model(&model);
        let pool = self.pool(&query.wafer)?;
        let solver = pool.solver(&model, &workload);
        self.queries.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let (plan, timed_out) = match query.deadline_ms {
            Some(ms) => {
                if query.engine != MappingEngine::Tcme {
                    return Err("deadline_ms requires engine=tcme".to_string());
                }
                solver
                    .solve_with_deadline(Duration::from_millis(ms))
                    .map_err(|e| format!("{e:?}"))?
            }
            None => match query.engine {
                MappingEngine::Tcme => (solver.solve().map_err(|e| format!("{e:?}"))?, false),
                engine => (
                    solver
                        .solve_with_engine(engine, |_| true)
                        .map_err(|e| format!("{e:?}"))?,
                    false,
                ),
            },
        };
        if timed_out {
            self.timeouts.fetch_add(1, Ordering::Relaxed);
        }
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        let score = match query.objective {
            Objective::StepTime => plan.report.step_time,
            Objective::Throughput => plan.report.throughput,
            Objective::PowerEfficiency => plan.report.power_efficiency,
        };
        Ok(format!(
            "{{\"ok\":true,\"model\":\"{}\",\"wafer\":\"{}\",\"engine\":\"{}\",\
             \"plan\":\"{}\",\"objective\":\"{}\",\"score\":{score},\
             \"step_time\":{},\"chain_cost\":{},\"throughput\":{},\
             \"timed_out\":{timed_out},\"wall_ms\":{wall_ms}}}",
            json_escape(&query.model),
            json_escape(&query.wafer),
            plan.engine,
            json_escape(&plan.config.label()),
            query.objective.name(),
            plan.report.step_time,
            plan.chain_cost,
            plan.report.throughput,
        ))
    }

    /// Pool-wide counters summed over every wafer pool:
    /// `(stats, unique evaluation keys)`.
    pub fn aggregate(&self) -> (SearchStats, usize) {
        let pools: Vec<Arc<ContextPool>> = {
            let map = self.pools.lock().expect("pools lock");
            map.values().map(Arc::clone).collect()
        };
        let mut total = SearchStats::default();
        let mut unique = 0usize;
        for pool in pools {
            let (stats, keys) = pool.aggregate_stats();
            total.hits += stats.hits;
            total.misses += stats.misses;
            total.coalesced += stats.coalesced;
            total.shard_waits += stats.shard_waits;
            total.seg_hits += stats.seg_hits;
            total.seg_misses += stats.seg_misses;
            unique += keys;
        }
        (total, unique)
    }

    /// Total exact evaluations ÷ distinct keys costed — 1.0 means no
    /// duplicated work at all; single-flight keeps concurrent identical
    /// queries at ~1.0 (0.0 on an idle server).
    pub fn duplicate_work_ratio(&self) -> f64 {
        let (stats, unique) = self.aggregate();
        if unique == 0 {
            0.0
        } else {
            stats.misses as f64 / unique as f64
        }
    }

    /// The `stats` reply.
    pub fn stats_json(&self) -> String {
        let (stats, unique) = self.aggregate();
        format!(
            "{{\"ok\":true,\"queries\":{},\"errors\":{},\"timeouts\":{},\
             \"evals\":{},\"hits\":{},\"unique_keys\":{unique},\
             \"duplicate_work_ratio\":{},\"coalesced\":{},\"shard_waits\":{},\
             \"models\":[{}]}}",
            self.queries.load(Ordering::Relaxed),
            self.errors.load(Ordering::Relaxed),
            self.timeouts.load(Ordering::Relaxed),
            stats.misses,
            stats.hits,
            if unique == 0 {
                0.0
            } else {
                stats.misses as f64 / unique as f64
            },
            stats.coalesced,
            stats.shard_waits,
            zoo_slugs()
                .iter()
                .map(|s| format!("\"{s}\""))
                .collect::<Vec<_>>()
                .join(","),
        )
    }

    /// Queries served so far (successful `solve`s).
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Persists every pool's contexts into the cache directory
    /// (atomically, per file). Without a configured directory this is a
    /// no-op reporting zero files.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from [`ContextPool::save_to`].
    pub fn save(&self) -> std::io::Result<usize> {
        let Some(dir) = &self.cache_dir else {
            return Ok(0);
        };
        let pools: Vec<Arc<ContextPool>> = {
            let map = self.pools.lock().expect("pools lock");
            map.values().map(Arc::clone).collect()
        };
        let mut saved = 0;
        for pool in pools {
            saved += pool.save_to(dir)?;
        }
        Ok(saved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_covers_the_protocol() {
        assert_eq!(Request::parse("stats"), Ok(Request::Stats));
        assert_eq!(Request::parse("ping"), Ok(Request::Ping));
        assert_eq!(Request::parse("save"), Ok(Request::Save));
        assert_eq!(Request::parse("shutdown"), Ok(Request::Shutdown));
        assert_eq!(Request::parse("quit"), Ok(Request::Shutdown));
        let q = Request::parse(
            "solve gpt3_6_7b wafer=hpca engine=smap deadline_ms=250 objective=throughput",
        )
        .expect("full solve line parses");
        assert_eq!(
            q,
            Request::Solve(Query {
                model: "gpt3_6_7b".into(),
                wafer: "hpca".into(),
                engine: MappingEngine::SMap,
                deadline_ms: Some(250),
                objective: Objective::Throughput,
            })
        );
        assert!(Request::parse("solve").is_err());
        assert!(Request::parse("solve m engine=warp").is_err());
        assert!(Request::parse("solve m wafer=tiny").is_err());
        assert!(Request::parse("solve m deadline_ms=soon").is_err());
        assert!(Request::parse("fly me to the moon").is_err());
        assert!(is_noise("   "));
        assert!(is_noise("# comment"));
        assert!(!is_noise("solve gpt3_6_7b"));
    }

    #[test]
    fn unknown_model_is_an_error_reply_not_a_panic() {
        let server = PlanServer::new(None).expect("server");
        let reply = server.handle_line("solve not_a_model");
        assert!(reply.text().starts_with("{\"ok\":false"));
        assert!(reply.text().contains("unknown model"));
        assert!(matches!(reply, Response::Reply(_)));
    }

    #[test]
    fn solve_stats_and_shutdown_round_trip() {
        let server = PlanServer::new(None).expect("server");
        let reply = server.handle_line("solve gpt3_6_7b");
        let text = reply.text();
        assert!(text.starts_with("{\"ok\":true"), "got {text}");
        assert!(text.contains("\"model\":\"gpt3_6_7b\""));
        assert!(text.contains("\"timed_out\":false"));
        // A repeat of the same query is answered from the shared context:
        // no new exact evaluations.
        let (before, _) = server.aggregate();
        let again = server.handle_line("solve gpt3_6_7b");
        assert_eq!(
            again.text().split("\"wall_ms\"").next(),
            text.split("\"wall_ms\"").next(),
            "repeat queries must serve the identical plan"
        );
        let (after, _) = server.aggregate();
        assert_eq!(before.misses, after.misses, "repeat query re-evaluated");
        let stats = server.handle_line("stats");
        assert!(stats.text().contains("\"queries\":2"));
        assert!(matches!(server.handle_line("shutdown"), Response::Quit(_)));
    }

    #[test]
    fn escaping_keeps_replies_single_line() {
        let escaped = error_reply("a \"quoted\"\nbackslash \\ tab\t");
        assert!(!escaped.contains('\n'));
        assert_eq!(
            escaped,
            "{\"ok\":false,\"error\":\"a \\\"quoted\\\"\\nbackslash \\\\ tab\\t\"}"
        );
    }
}
