//! `temp-serve` — the plan-serving daemon.
//!
//! ```text
//! temp-serve [--cache-dir DIR] [--port PORT]
//! ```
//!
//! Without `--port` the server speaks the line protocol on
//! stdin/stdout: each `solve` runs on its own thread (replies land as
//! solves finish, so concurrent queries coalesce in the shared pool),
//! while `stats`/`save`/`shutdown` first drain outstanding solves so
//! their answers are settled. With `--port` it listens on
//! `127.0.0.1:PORT` and serves one protocol session per connection;
//! concurrency comes from concurrent connections.
//!
//! With `--cache-dir` the server warm-imports matching
//! `cache-<fingerprint>.txt` files on startup and saves every pooled
//! context back on `shutdown`/EOF, so a restart answers repeat queries
//! with zero exact evaluations.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

use temp_serve::{is_noise, PlanServer, Request, Response};

struct Args {
    cache_dir: Option<PathBuf>,
    port: Option<u16>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cache_dir: None,
        port: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--cache-dir" => {
                let dir = it.next().ok_or("--cache-dir needs a directory")?;
                args.cache_dir = Some(PathBuf::from(dir));
            }
            "--port" => {
                let port = it.next().ok_or("--port needs a port number")?;
                args.port = Some(
                    port.parse()
                        .map_err(|e| format!("bad port {port:?}: {e}"))?,
                );
            }
            "--help" | "-h" => {
                println!("usage: temp-serve [--cache-dir DIR] [--port PORT]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

/// Stdin session: solves fan out to threads, control requests drain
/// them first so `stats` and `shutdown` see settled counters.
fn serve_stdin(server: Arc<PlanServer>) -> std::io::Result<()> {
    let stdout = Arc::new(Mutex::new(std::io::stdout()));
    let mut solves: Vec<thread::JoinHandle<()>> = Vec::new();
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line?;
        if is_noise(&line) {
            continue;
        }
        if matches!(Request::parse(&line), Ok(Request::Solve(_))) {
            let server = Arc::clone(&server);
            let stdout = Arc::clone(&stdout);
            solves.push(thread::spawn(move || {
                let response = server.handle_line(&line);
                let mut out = stdout.lock().expect("stdout lock");
                let _ = writeln!(out, "{}", response.text());
                let _ = out.flush();
            }));
            continue;
        }
        for handle in solves.drain(..) {
            let _ = handle.join();
        }
        let response = server.handle_line(&line);
        {
            let mut out = stdout.lock().expect("stdout lock");
            writeln!(out, "{}", response.text())?;
            out.flush()?;
        }
        if matches!(response, Response::Quit(_)) {
            return Ok(());
        }
    }
    // EOF without an explicit shutdown still persists the caches.
    for handle in solves.drain(..) {
        let _ = handle.join();
    }
    server.save()?;
    Ok(())
}

/// One TCP protocol session. A `shutdown` request flips the stop flag
/// and pokes the listener so the accept loop can exit.
fn serve_connection(
    server: &PlanServer,
    stream: TcpStream,
    stop: &AtomicBool,
    self_addr: std::net::SocketAddr,
) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if is_noise(&line) {
            continue;
        }
        let response = server.handle_line(&line);
        writeln!(writer, "{}", response.text())?;
        writer.flush()?;
        if matches!(response, Response::Quit(_)) {
            stop.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(self_addr);
            break;
        }
    }
    Ok(())
}

fn serve_tcp(server: Arc<PlanServer>, port: u16) -> std::io::Result<()> {
    let listener = TcpListener::bind(("127.0.0.1", port))?;
    let addr = listener.local_addr()?;
    eprintln!("temp-serve: listening on {addr}");
    let stop = Arc::new(AtomicBool::new(false));
    let mut sessions: Vec<thread::JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = stream?;
        let server = Arc::clone(&server);
        let stop = Arc::clone(&stop);
        sessions.push(thread::spawn(move || {
            if let Err(e) = serve_connection(&server, stream, &stop, addr) {
                eprintln!("temp-serve: session error: {e}");
            }
        }));
    }
    for handle in sessions {
        let _ = handle.join();
    }
    // `shutdown` already saved inside handle_line; saving again is a
    // cheap idempotent rewrite and also covers listener errors.
    server.save()?;
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("temp-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let server = match PlanServer::new(args.cache_dir.as_deref()) {
        Ok(server) => Arc::new(server),
        Err(e) => {
            eprintln!("temp-serve: cache dir unusable: {e}");
            return ExitCode::FAILURE;
        }
    };
    let served = match args.port {
        Some(port) => serve_tcp(server, port),
        None => serve_stdin(server),
    };
    match served {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("temp-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
