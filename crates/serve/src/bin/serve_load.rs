//! `serve_load` — the plan-serving load driver.
//!
//! Three phases against in-process [`PlanServer`]s:
//!
//! 1. **Single-flight**: eight clients behind a barrier fire the
//!    identical query at one cold server; the exact-evaluation count is
//!    compared to a lone cold solve. Coalescing keeps the ratio at ~1.0
//!    (the gate allows 1.2x).
//! 2. **Open-loop load**: a seeded dispatcher draws exponential
//!    inter-arrivals and feeds a mixed fig13-zoo query stream to a
//!    client pool through a queue, so arrivals never wait on service
//!    (open loop). Reports qps, p50/p99 arrival-to-completion latency,
//!    and the pool-wide duplicate-work ratio (exact evals ÷ unique
//!    keys).
//! 3. **Warm restart**: one server solves the zoo into a cache
//!    directory and shuts down; a second server starts from that
//!    directory and must answer the whole zoo with **zero** exact
//!    evaluations and byte-identical plans.
//!
//! With `--json <path>` the consolidated record is written for
//! baselining; with `--check <path>` the run is gated against that
//! baseline (duplicate-work ratios, warm evals, warm-restart qps) and
//! exits non-zero on regression. `--smoke` shrinks the load phase for
//! CI.

use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Barrier, Condvar, Mutex};
use std::thread;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use temp_serve::{fig13_slugs, PlanServer};

/// Pulls an integer field out of a one-record bench JSON line (the
/// vendored serde stand-in cannot deserialize).
fn json_u64_field(record: &str, field: &str) -> Option<u64> {
    let needle = format!("\"{field}\"");
    let after_key = record.find(&needle)? + needle.len();
    let rest = record[after_key..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

/// Pulls a float field out of a one-record bench JSON line.
fn json_f64_field(record: &str, field: &str) -> Option<f64> {
    let needle = format!("\"{field}\"");
    let after_key = record.find(&needle)? + needle.len();
    let rest = record[after_key..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    let digits: String = rest
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
        .collect();
    digits.parse().ok()
}

/// The reply prefix that is stable across runs (everything before the
/// wall-clock field).
fn stable_reply(reply: &str) -> &str {
    reply.split(",\"wall_ms\"").next().unwrap_or(reply)
}

/// Latency percentile over a sorted sample, nearest-rank.
fn percentile_ms(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Phase 1: N identical queries racing one cold server vs. one query on
/// another. Returns (concurrent evals, lone evals, coalesced count).
fn single_flight_phase(clients: usize) -> (u64, u64, u64) {
    let server = Arc::new(PlanServer::new(None).expect("cold server"));
    let barrier = Arc::new(Barrier::new(clients));
    let replies: Vec<String> = {
        let mut handles = Vec::new();
        for _ in 0..clients {
            let server = Arc::clone(&server);
            let barrier = Arc::clone(&barrier);
            handles.push(thread::spawn(move || {
                barrier.wait();
                server.handle_line("solve gpt3_6_7b").text().to_string()
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    };
    let first = stable_reply(&replies[0]).to_string();
    for reply in &replies {
        assert_eq!(
            stable_reply(reply),
            first,
            "coalesced clients must observe the identical plan"
        );
    }
    let (stats, _) = server.aggregate();

    let lone = PlanServer::new(None).expect("cold server");
    lone.handle_line("solve gpt3_6_7b");
    let (lone_stats, _) = lone.aggregate();
    (stats.misses, lone_stats.misses, stats.coalesced)
}

/// An arrival queue: dispatcher pushes timestamped query lines, clients
/// pop them; `closed` drains the pool at end of stream.
struct ArrivalQueue {
    jobs: Mutex<(VecDeque<(Instant, String)>, bool)>,
    ready: Condvar,
}

impl ArrivalQueue {
    fn new() -> Self {
        ArrivalQueue {
            jobs: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
        }
    }

    fn push(&self, job: (Instant, String)) {
        self.jobs.lock().expect("queue lock").0.push_back(job);
        self.ready.notify_one();
    }

    fn close(&self) {
        self.jobs.lock().expect("queue lock").1 = true;
        self.ready.notify_all();
    }

    fn pop(&self) -> Option<(Instant, String)> {
        let mut guard = self.jobs.lock().expect("queue lock");
        loop {
            if let Some(job) = guard.0.pop_front() {
                return Some(job);
            }
            if guard.1 {
                return None;
            }
            guard = self.ready.wait(guard).expect("queue wait");
        }
    }
}

struct LoadResult {
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    duplicate_work_ratio: f64,
    coalesced: u64,
    shard_waits: u64,
}

/// Phase 2: seeded open-loop arrivals of mixed zoo queries.
fn open_loop_phase(queries: usize, clients: usize, rate_qps: f64, seed: u64) -> LoadResult {
    let server = Arc::new(PlanServer::new(None).expect("cold server"));
    let queue = Arc::new(ArrivalQueue::new());
    let latencies = Arc::new(Mutex::new(Vec::with_capacity(queries)));

    let mut workers = Vec::new();
    for _ in 0..clients {
        let server = Arc::clone(&server);
        let queue = Arc::clone(&queue);
        let latencies = Arc::clone(&latencies);
        workers.push(thread::spawn(move || {
            while let Some((arrived, line)) = queue.pop() {
                let reply = server.handle_line(&line);
                assert!(
                    reply.text().starts_with("{\"ok\":true"),
                    "load query failed: {}",
                    reply.text()
                );
                let waited_ms = arrived.elapsed().as_secs_f64() * 1e3;
                latencies.lock().expect("latency lock").push(waited_ms);
            }
        }));
    }

    // Open loop: arrivals are drawn up front from the seeded stream and
    // dispatched on schedule regardless of how service is keeping up.
    let mut rng = StdRng::seed_from_u64(seed);
    let zoo = fig13_slugs();
    let started = Instant::now();
    for index in 0..queries {
        let slug = zoo[rng.gen_range(0..zoo.len())];
        let line = if index % 5 == 4 {
            format!("solve {slug} objective=throughput")
        } else {
            format!("solve {slug}")
        };
        // Exponential inter-arrival gap (inverse-CDF of a uniform draw),
        // so bursts and lulls both occur at the offered rate.
        let gap = -rng.gen_range(1e-9..1.0f64).ln() / rate_qps;
        thread::sleep(std::time::Duration::from_secs_f64(gap));
        queue.push((Instant::now(), line));
    }
    queue.close();
    for worker in workers {
        worker.join().expect("load client");
    }
    let wall_s = started.elapsed().as_secs_f64();

    let mut sorted = latencies.lock().expect("latency lock").clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    assert_eq!(sorted.len(), queries, "every arrival must complete");
    let (stats, _) = server.aggregate();
    LoadResult {
        qps: queries as f64 / wall_s,
        p50_ms: percentile_ms(&sorted, 50.0),
        p99_ms: percentile_ms(&sorted, 99.0),
        duplicate_work_ratio: server.duplicate_work_ratio(),
        coalesced: stats.coalesced,
        shard_waits: stats.shard_waits,
    }
}

struct WarmResult {
    warm_evals: u64,
    warm_qps: f64,
    plans_match: bool,
}

/// Phase 3: solve the zoo into a cache dir, restart, and replay it warm.
fn warm_restart_phase(dir: &Path) -> WarmResult {
    let _ = std::fs::remove_dir_all(dir);
    let zoo = fig13_slugs();

    let cold = PlanServer::new(Some(dir)).expect("cold server with cache dir");
    let mut cold_plans = Vec::new();
    for slug in &zoo {
        let reply = cold.handle_line(&format!("solve {slug}"));
        assert!(reply.text().starts_with("{\"ok\":true"), "{}", reply.text());
        cold_plans.push(stable_reply(reply.text()).to_string());
    }
    cold.handle_line("shutdown");
    // The atomic save must leave no torn temp files behind.
    for entry in std::fs::read_dir(dir).expect("cache dir listing") {
        let name = entry.expect("cache dir entry").file_name();
        assert!(
            !name.to_string_lossy().contains(".tmp-"),
            "save_to left a temp file behind: {name:?}"
        );
    }

    let warm = PlanServer::new(Some(dir)).expect("warm server with cache dir");
    let restarted = Instant::now();
    let mut plans_match = true;
    for (slug, cold_plan) in zoo.iter().zip(&cold_plans) {
        let reply = warm.handle_line(&format!("solve {slug}"));
        plans_match &= stable_reply(reply.text()) == cold_plan;
    }
    let warm_wall_s = restarted.elapsed().as_secs_f64();
    let (warm_stats, _) = warm.aggregate();
    let _ = std::fs::remove_dir_all(dir);
    WarmResult {
        warm_evals: warm_stats.misses,
        warm_qps: zoo.len() as f64 / warm_wall_s,
        plans_match,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag_value = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let seed: u64 = flag_value("--seed")
        .map(|v| v.parse().expect("--seed takes an integer"))
        .unwrap_or(42);
    let queries: usize = flag_value("--queries")
        .map(|v| v.parse().expect("--queries takes an integer"))
        .unwrap_or(if smoke { 48 } else { 200 });
    let clients: usize = flag_value("--clients")
        .map(|v| v.parse().expect("--clients takes an integer"))
        .unwrap_or(if smoke { 4 } else { 8 });
    let rate_qps: f64 = flag_value("--rate")
        .map(|v| v.parse().expect("--rate takes a float"))
        .unwrap_or(if smoke { 200.0 } else { 400.0 });
    let cache_dir = flag_value("--cache-dir")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            std::env::temp_dir().join(format!("temp-serve-load-{}", std::process::id()))
        });
    let json_path = flag_value("--json").map(PathBuf::from);
    // Read the baseline before --json can overwrite it.
    let baseline = flag_value("--check").and_then(|p| std::fs::read_to_string(p).ok());

    let threads_effective = temp_solver::runtime::global().workers();
    println!("serve_load: {threads_effective} runtime worker(s), seed {seed}");

    println!("phase 1: single-flight — 8 identical queries vs. one");
    let (flight_evals, lone_evals, flight_coalesced) = single_flight_phase(8);
    let singleflight_ratio = flight_evals as f64 / lone_evals.max(1) as f64;
    println!(
        "  evals: {flight_evals} concurrent vs {lone_evals} lone \
         (ratio {singleflight_ratio:.3}, {flight_coalesced} coalesced)"
    );

    println!("phase 2: open loop — {queries} queries, {clients} clients, {rate_qps} qps offered");
    let load = open_loop_phase(queries, clients, rate_qps, seed);
    println!(
        "  {:.1} qps served, p50 {:.3} ms, p99 {:.3} ms, duplicate work {:.3}x, \
         {} coalesced, {} shard waits",
        load.qps,
        load.p50_ms,
        load.p99_ms,
        load.duplicate_work_ratio,
        load.coalesced,
        load.shard_waits
    );

    println!("phase 3: warm restart through {}", cache_dir.display());
    let warm = warm_restart_phase(&cache_dir);
    println!(
        "  {} warm evals, {:.1} warm qps, plans match: {}",
        warm.warm_evals, warm.warm_qps, warm.plans_match
    );

    let record = format!(
        "{{\"bench\":\"serve_load\",\"smoke\":{smoke},\"threads_effective\":{threads_effective},\
         \"seed\":{seed},\"queries\":{queries},\"clients\":{clients},\"rate_qps\":{rate_qps},\
         \"qps\":{:.4},\"p50_ms\":{:.4},\"p99_ms\":{:.4},\
         \"duplicate_work_ratio\":{:.4},\"coalesced\":{},\"shard_waits\":{},\
         \"singleflight_ratio\":{singleflight_ratio:.4},\"singleflight_evals\":{flight_evals},\
         \"lone_evals\":{lone_evals},\"singleflight_coalesced\":{flight_coalesced},\
         \"warm_evals\":{},\"warm_qps\":{:.4},\"warm_restart_plans_match\":{}}}",
        load.qps,
        load.p50_ms,
        load.p99_ms,
        load.duplicate_work_ratio,
        load.coalesced,
        load.shard_waits,
        warm.warm_evals,
        warm.warm_qps,
        warm.plans_match,
    );
    println!("{record}");
    if let Some(path) = &json_path {
        std::fs::write(path, format!("{record}\n")).expect("write --json record");
        println!("wrote {}", path.display());
    }

    let mut failed = false;
    // Hard invariants first: these hold on any machine at any speed.
    if singleflight_ratio > 1.2 {
        eprintln!(
            "FAIL: single-flight ratio {singleflight_ratio:.3} > 1.2 — concurrent identical \
             queries are duplicating exact evaluations"
        );
        failed = true;
    }
    if load.duplicate_work_ratio > 1.2 {
        eprintln!(
            "FAIL: duplicate-work ratio {:.3} > 1.2 under open-loop load",
            load.duplicate_work_ratio
        );
        failed = true;
    }
    if warm.warm_evals != 0 {
        eprintln!(
            "FAIL: warm-restarted server ran {} exact evals on the fig13 zoo (want 0)",
            warm.warm_evals
        );
        failed = true;
    }
    if !warm.plans_match {
        eprintln!("FAIL: warm-restarted plans differ from the cold server's");
        failed = true;
    }
    if let Some(baseline) = &baseline {
        // Speed gates are generous (5x) — they catch serving falling off
        // a cliff, not scheduler noise.
        if let Some(base_warm_qps) = json_f64_field(baseline, "warm_qps") {
            if warm.warm_qps < base_warm_qps / 5.0 {
                eprintln!(
                    "FAIL: warm-restart qps {:.1} fell below a fifth of the committed {:.1}",
                    warm.warm_qps, base_warm_qps
                );
                failed = true;
            }
        }
        if let Some(base_p99) = json_f64_field(baseline, "p99_ms") {
            let limit = base_p99 * 5.0 + 25.0;
            if load.p99_ms > limit {
                eprintln!(
                    "FAIL: p99 latency {:.3} ms exceeds {limit:.3} ms \
                     (5x committed {base_p99:.3} ms + 25 ms slack)",
                    load.p99_ms
                );
                failed = true;
            }
        }
        if let Some(base_warm_evals) = json_u64_field(baseline, "warm_evals") {
            if warm.warm_evals > base_warm_evals {
                eprintln!(
                    "FAIL: warm evals {} regressed over the committed {base_warm_evals}",
                    warm.warm_evals
                );
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("serve_load passed: coalescing, open-loop load, and warm restart all within gates");
}
