//! Multivariate linear regression — the Fig. 21 baseline predictor.
//!
//! Ordinary least squares via normal equations with ridge damping, on
//! standardized features and log-space targets (the favorable formulation;
//! the baseline still cannot capture the roofline max() nonlinearity).

use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::mlp::Standardizer;

/// A fitted linear model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearRegression {
    weights: Vec<f64>,
    bias: f64,
    norm: Standardizer,
}

impl LinearRegression {
    /// Fits by ridge-damped normal equations on log-targets.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset.
    pub fn fit(data: &Dataset) -> Self {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        let norm = Standardizer::fit(&data.features);
        let x: Vec<Vec<f64>> = data.features.iter().map(|f| norm.apply(f)).collect();
        let y: Vec<f64> = data.targets.iter().map(|t| t.max(1e-12).ln()).collect();
        let d = x[0].len();
        let n = x.len();
        // Build X^T X (+ ridge) and X^T y with a bias column folded in.
        let dim = d + 1;
        let mut xtx = vec![vec![0.0f64; dim]; dim];
        let mut xty = vec![0.0f64; dim];
        for (row, &target) in x.iter().zip(&y) {
            let mut ext = row.clone();
            ext.push(1.0);
            for i in 0..dim {
                xty[i] += ext[i] * target;
                for j in 0..dim {
                    xtx[i][j] += ext[i] * ext[j];
                }
            }
        }
        let ridge = 1e-6 * n as f64;
        for (i, row) in xtx.iter_mut().enumerate() {
            row[i] += ridge;
        }
        let theta = solve_gaussian(xtx, xty);
        let (weights, bias) = theta.split_at(d);
        LinearRegression {
            weights: weights.to_vec(),
            bias: bias[0],
            norm,
        }
    }

    /// Predicts one latency (seconds).
    pub fn predict(&self, features: &[f64]) -> f64 {
        let x = self.norm.apply(features);
        let log = self.bias + x.iter().zip(&self.weights).map(|(a, b)| a * b).sum::<f64>();
        log.exp()
    }

    /// Predicts every sample of a dataset.
    pub fn predict_all(&self, data: &Dataset) -> Vec<f64> {
        data.features.iter().map(|f| self.predict(f)).collect()
    }

    /// The feature dimension the model was fitted on.
    pub fn feature_dim(&self) -> usize {
        self.weights.len()
    }

    /// Serializes the fitted model to a line-oriented text format (the
    /// vendored `serde` stand-in has no real serialization, so persisted
    /// surrogate predictors use this portable representation instead).
    ///
    /// Format: a `linreg v1 <dim>` header followed by one
    /// whitespace-separated row each for weights, bias, feature means and
    /// feature standard deviations. Floats round-trip exactly (shortest
    /// `{:?}` representation).
    pub fn to_text(&self) -> String {
        let row = |vs: &[f64]| {
            vs.iter()
                .map(|v| format!("{v:?}"))
                .collect::<Vec<_>>()
                .join(" ")
        };
        format!(
            "linreg v1 {}\n{}\n{:?}\n{}\n{}\n",
            self.weights.len(),
            row(&self.weights),
            self.bias,
            row(self.norm.mean()),
            row(self.norm.std()),
        )
    }

    /// Parses a model serialized by [`LinearRegression::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_text(text: &str) -> std::result::Result<Self, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty predictor text")?;
        let mut parts = header.split_whitespace();
        if (parts.next(), parts.next()) != (Some("linreg"), Some("v1")) {
            return Err(format!("unsupported predictor header: {header}"));
        }
        let dim: usize = parts
            .next()
            .and_then(|d| d.parse().ok())
            .ok_or("missing feature dimension in header")?;
        fn parse_row(
            what: &str,
            line: Option<&str>,
            dim: usize,
        ) -> std::result::Result<Vec<f64>, String> {
            let line = line.ok_or(format!("missing {what} row"))?;
            let vals: Vec<f64> = line
                .split_whitespace()
                .map(|v| v.parse::<f64>().map_err(|e| format!("{what}: {e}")))
                .collect::<std::result::Result<_, _>>()?;
            if vals.len() != dim {
                return Err(format!("{what}: expected {dim} values, got {}", vals.len()));
            }
            if let Some(bad) = vals.iter().find(|v| !v.is_finite()) {
                return Err(format!("{what}: non-finite value {bad}"));
            }
            Ok(vals)
        }
        let weights = parse_row("weights", lines.next(), dim)?;
        let bias_line = lines.next().ok_or("missing bias row")?;
        let bias: f64 = bias_line.trim().parse().map_err(|e| format!("bias: {e}"))?;
        if !bias.is_finite() {
            return Err(format!("bias: non-finite value {bias}"));
        }
        let mean = parse_row("mean", lines.next(), dim)?;
        let std = parse_row("std", lines.next(), dim)?;
        // `Standardizer::fit` clamps stds to >= 1e-9; a persisted model
        // must satisfy the same invariant or `predict` would silently
        // divide by zero.
        if let Some(bad) = std.iter().find(|s| **s <= 0.0) {
            return Err(format!("std: non-positive value {bad}"));
        }
        Ok(LinearRegression {
            weights,
            bias,
            norm: Standardizer::from_parts(mean, std),
        })
    }
}

/// Gaussian elimination with partial pivoting.
fn solve_gaussian(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .expect("finite")
            })
            .expect("non-empty");
        a.swap(col, pivot);
        b.swap(col, pivot);
        let diag = a[col][col];
        if diag.abs() < 1e-12 {
            continue;
        }
        let (head, tail) = a.split_at_mut(col + 1);
        let pivot_row = &head[col];
        let b_col = b[col];
        for (offset, row_vec) in tail.iter_mut().enumerate() {
            let factor = row_vec[col] / diag;
            for (cell, &pivot_cell) in row_vec[col..].iter_mut().zip(&pivot_row[col..]) {
                *cell -= factor * pivot_cell;
            }
            b[col + 1 + offset] -= factor * b_col;
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in row + 1..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = if a[row][row].abs() < 1e-12 {
            0.0
        } else {
            acc / a[row][row]
        };
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{generate, TargetClass};
    use crate::metrics::pearson;

    #[test]
    fn fits_compute_latencies_reasonably() {
        let data = generate(TargetClass::Compute, 300, 11);
        let (train, test) = data.split(0.8);
        let lr = LinearRegression::fit(&train);
        let pred = lr.predict_all(&test);
        let corr = pearson(&pred, &test.targets);
        assert!(corr > 0.8, "corr {corr}");
    }

    #[test]
    fn text_serialization_round_trips_exactly() {
        let data = generate(TargetClass::Compute, 120, 23);
        let lr = LinearRegression::fit(&data);
        let text = lr.to_text();
        let back = LinearRegression::from_text(&text).unwrap();
        assert_eq!(lr, back);
        // Predictions are bit-identical through the round trip.
        for f in data.features.iter().take(10) {
            assert_eq!(lr.predict(f).to_bits(), back.predict(f).to_bits());
        }
        // Malformed inputs are rejected, not panicked on.
        assert!(LinearRegression::from_text("").is_err());
        assert!(LinearRegression::from_text("mlp v1 3\n1 2 3").is_err());
        assert!(LinearRegression::from_text("linreg v1 2\n1.0\n0.0\n1 2\n1 2").is_err());
        // Value-invalid files are rejected too: a zero/negative std would
        // silently divide predictions to inf/NaN, and non-finite
        // parameters must not round-trip.
        assert!(LinearRegression::from_text("linreg v1 1\n1.0\n0.0\n1.0\n0.0").is_err());
        assert!(LinearRegression::from_text("linreg v1 1\n1.0\n0.0\n1.0\n-1.0").is_err());
        assert!(LinearRegression::from_text("linreg v1 1\nNaN\n0.0\n1.0\n1.0").is_err());
        assert!(LinearRegression::from_text("linreg v1 1\n1.0\ninf\n1.0\n1.0").is_err());
    }

    #[test]
    fn exact_linear_log_relation_is_recovered() {
        // y = exp(2*x0 + 1): exactly linear in log space.
        let features: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 / 10.0]).collect();
        let targets: Vec<f64> = features.iter().map(|f| (2.0 * f[0] + 1.0).exp()).collect();
        let data = Dataset {
            features,
            targets,
            class: TargetClass::Compute,
        };
        let lr = LinearRegression::fit(&data);
        let pred = lr.predict(&[2.5]);
        let expected = (2.0f64 * 2.5 + 1.0).exp();
        assert!(
            (pred - expected).abs() / expected < 1e-4,
            "{pred} vs {expected}"
        );
    }
}
