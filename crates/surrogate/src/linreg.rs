//! Multivariate linear regression — the Fig. 21 baseline predictor.
//!
//! Ordinary least squares via normal equations with ridge damping, on
//! standardized features and log-space targets (the favorable formulation;
//! the baseline still cannot capture the roofline max() nonlinearity).

use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::mlp::Standardizer;

/// A fitted linear model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearRegression {
    weights: Vec<f64>,
    bias: f64,
    norm: Standardizer,
}

impl LinearRegression {
    /// Fits by ridge-damped normal equations on log-targets.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset.
    pub fn fit(data: &Dataset) -> Self {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        let norm = Standardizer::fit(&data.features);
        let x: Vec<Vec<f64>> = data.features.iter().map(|f| norm.apply(f)).collect();
        let y: Vec<f64> = data.targets.iter().map(|t| t.max(1e-12).ln()).collect();
        let d = x[0].len();
        let n = x.len();
        // Build X^T X (+ ridge) and X^T y with a bias column folded in.
        let dim = d + 1;
        let mut xtx = vec![vec![0.0f64; dim]; dim];
        let mut xty = vec![0.0f64; dim];
        for (row, &target) in x.iter().zip(&y) {
            let mut ext = row.clone();
            ext.push(1.0);
            for i in 0..dim {
                xty[i] += ext[i] * target;
                for j in 0..dim {
                    xtx[i][j] += ext[i] * ext[j];
                }
            }
        }
        let ridge = 1e-6 * n as f64;
        for (i, row) in xtx.iter_mut().enumerate() {
            row[i] += ridge;
        }
        let theta = solve_gaussian(xtx, xty);
        let (weights, bias) = theta.split_at(d);
        LinearRegression {
            weights: weights.to_vec(),
            bias: bias[0],
            norm,
        }
    }

    /// Predicts one latency (seconds).
    pub fn predict(&self, features: &[f64]) -> f64 {
        let x = self.norm.apply(features);
        let log = self.bias + x.iter().zip(&self.weights).map(|(a, b)| a * b).sum::<f64>();
        log.exp()
    }

    /// Predicts every sample of a dataset.
    pub fn predict_all(&self, data: &Dataset) -> Vec<f64> {
        data.features.iter().map(|f| self.predict(f)).collect()
    }
}

/// Gaussian elimination with partial pivoting.
fn solve_gaussian(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .expect("finite")
            })
            .expect("non-empty");
        a.swap(col, pivot);
        b.swap(col, pivot);
        let diag = a[col][col];
        if diag.abs() < 1e-12 {
            continue;
        }
        let (head, tail) = a.split_at_mut(col + 1);
        let pivot_row = &head[col];
        let b_col = b[col];
        for (offset, row_vec) in tail.iter_mut().enumerate() {
            let factor = row_vec[col] / diag;
            for (cell, &pivot_cell) in row_vec[col..].iter_mut().zip(&pivot_row[col..]) {
                *cell -= factor * pivot_cell;
            }
            b[col + 1 + offset] -= factor * b_col;
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in row + 1..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = if a[row][row].abs() < 1e-12 {
            0.0
        } else {
            acc / a[row][row]
        };
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{generate, TargetClass};
    use crate::metrics::pearson;

    #[test]
    fn fits_compute_latencies_reasonably() {
        let data = generate(TargetClass::Compute, 300, 11);
        let (train, test) = data.split(0.8);
        let lr = LinearRegression::fit(&train);
        let pred = lr.predict_all(&test);
        let corr = pearson(&pred, &test.targets);
        assert!(corr > 0.8, "corr {corr}");
    }

    #[test]
    fn exact_linear_log_relation_is_recovered() {
        // y = exp(2*x0 + 1): exactly linear in log space.
        let features: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 / 10.0]).collect();
        let targets: Vec<f64> = features.iter().map(|f| (2.0 * f[0] + 1.0).exp()).collect();
        let data = Dataset {
            features,
            targets,
            class: TargetClass::Compute,
        };
        let lr = LinearRegression::fit(&data);
        let pred = lr.predict(&[2.5]);
        let expected = (2.0f64 * 2.5 + 1.0).exp();
        assert!(
            (pred - expected).abs() / expected < 1e-4,
            "{pred} vs {expected}"
        );
    }
}
