//! Fig. 21 accuracy metrics: Pearson correlation and mean relative error.

/// Pearson correlation of paired series. Returns 0 for degenerate inputs.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    if n < 2 {
        return 0.0;
    }
    let (a, b) = (&a[..n], &b[..n]);
    let ma = a.iter().sum::<f64>() / n as f64;
    let mb = b.iter().sum::<f64>() / n as f64;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma).powi(2);
        vb += (y - mb).powi(2);
    }
    if va <= 0.0 || vb <= 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

/// Mean relative error `|pred - actual| / actual`, skipping zero actuals.
pub fn mean_relative_error(pred: &[f64], actual: &[f64]) -> f64 {
    let mut total = 0.0;
    let mut n = 0usize;
    for (p, a) in pred.iter().zip(actual) {
        if *a != 0.0 {
            total += ((p - a) / a).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_correlation() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        let c = [4.0, 3.0, 2.0, 1.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_return_zero() {
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }

    #[test]
    fn relative_error_basics() {
        let e = mean_relative_error(&[1.1, 0.9], &[1.0, 1.0]);
        assert!((e - 0.1).abs() < 1e-12);
        assert_eq!(mean_relative_error(&[], &[]), 0.0);
    }
}
