//! # temp-surrogate — the DNN-based cost model (§VII-A, Fig. 21)
//!
//! The paper trains a DNN on an ASTRA-sim-generated dataset so the DLWS
//! search can query latencies in microseconds instead of re-simulating
//! (100–1000x faster search). This crate reproduces the methodology:
//!
//! * [`dataset`] — sweeps operator/communication parameters through the
//!   `temp-sim` models to build (features, latency) samples for the three
//!   Fig. 21 target classes: computation, collective communication, and
//!   computation/communication overlap;
//! * [`mlp`] — a small feed-forward network (manual backprop, Adam,
//!   feature/target normalization, seeded init);
//! * [`linreg`] — the multivariate linear-regression baseline (normal
//!   equations);
//! * [`metrics`] — Pearson correlation and mean relative error.
//!
//! # Example
//!
//! ```
//! use temp_surrogate::dataset::{generate, TargetClass};
//! use temp_surrogate::linreg::LinearRegression;
//! use temp_surrogate::metrics::{mean_relative_error, pearson};
//!
//! let data = generate(TargetClass::Compute, 200, 7);
//! let (train, test) = data.split(0.8);
//! let lr = LinearRegression::fit(&train);
//! let pred = lr.predict_all(&test);
//! let corr = pearson(&pred, &test.targets);
//! assert!(corr > 0.8);
//! let _err = mean_relative_error(&pred, &test.targets);
//! ```

pub mod dataset;
pub mod features;
pub mod gate;
pub mod linreg;
pub mod metrics;
pub mod mlp;

pub use dataset::{Dataset, TargetClass};
pub use features::{
    chain_features, config_features, segment_features, CHAIN_FEATURE_DIM, CONFIG_FEATURE_DIM,
    SEGMENT_FEATURE_DIM,
};
pub use gate::{GateModel, GatePredictor};
pub use linreg::LinearRegression;
pub use mlp::{Mlp, TrainParams};
