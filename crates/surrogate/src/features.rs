//! Cheap analytic features for one DLWS evaluation key.
//!
//! The two-tier search (paper §VII-A: surrogate queries are 100–1000x
//! faster than re-simulation) ranks a whole candidate batch by predicted
//! step time before the exact cost model runs on the survivors. For that
//! to pay off the features must cost microseconds: everything here is
//! closed-form arithmetic on the `(HybridConfig, engine, RecomputeMode)`
//! key and the context's fixed model/workload/wafer — no layout, no
//! routing, no contention simulation.
//!
//! Features are log-transformed where step time is near power-law in them
//! (per-die FLOPs, shard bytes, stream granularity), matching the
//! formulation the [`crate::linreg`]/[`crate::mlp`] predictors fit best.

use temp_graph::models::ModelConfig;
use temp_graph::workload::{RecomputeMode, Workload};
use temp_parallel::strategy::HybridConfig;
use temp_wsc::config::WaferConfig;

/// Number of features produced by [`config_features`].
pub const CONFIG_FEATURE_DIM: usize = 16;

/// Extracts the feature vector of one evaluation key.
///
/// `engine_code` is an opaque small integer distinguishing mapping
/// engines (this crate does not depend on `temp-mapping`); callers must
/// use a stable encoding.
pub fn config_features(
    model: &ModelConfig,
    workload: &Workload,
    wafer: &WaferConfig,
    cfg: &HybridConfig,
    engine_code: u8,
    mode: RecomputeMode,
) -> Vec<f64> {
    let ln = |v: f64| v.max(1e-12).ln();
    let (dp, tp, sp, cp, tatp, pp) = (
        cfg.dp.max(1) as f64,
        cfg.tp.max(1) as f64,
        cfg.sp.max(1) as f64,
        cfg.cp.max(1) as f64,
        cfg.tatp.max(1) as f64,
        cfg.pp.max(1) as f64,
    );
    let micro = workload.micro_batches.max(1) as f64;
    let dtype = workload.compute_dtype.bytes() as f64;
    let recompute_factor = match mode {
        RecomputeMode::Full => 4.0 / 3.0,
        _ => 1.0,
    };
    // Per-die shares of the three step-time drivers.
    let flops_per_die =
        workload.step_flops(model) * recompute_factor / (dp * tp * sp * cp * tatp * pp);
    let weight_shard = dp * tp * tatp * pp;
    let param_bytes_per_die = model.total_params() as f64 * dtype
        / if cfg.fsdp {
            weight_shard
        } else {
            tp * tatp * pp
        };
    let act_bytes_per_die =
        workload.micro_batch_size() as f64 * workload.seq_len as f64 * model.hidden as f64 * dtype
            / (dp * sp * cp);
    // TATP stream granularity: the per-round weight chunk (§III-B — fine
    // chunks under-utilize the D2D links, the Fig. 9 tail).
    let stream_chunk =
        model.hidden as f64 * model.ffn_hidden as f64 * dtype / (tp * tatp * tatp * pp);
    vec![
        ln(dp),
        ln(tp),
        ln(sp * cp),
        ln(tatp),
        ln(pp),
        if cfg.fsdp { 1.0 } else { 0.0 },
        engine_code as f64,
        recompute_factor,
        ln(flops_per_die),
        ln(param_bytes_per_die),
        ln(act_bytes_per_die),
        ln(stream_chunk),
        // Ring factor of the DP gradient collective: (dp-1)/dp rounds.
        (dp - 1.0) / dp,
        // Pipeline bubble fraction: (pp-1)/(micro+pp-1).
        (pp - 1.0) / (micro + pp - 1.0),
        tatp,
        ln(wafer.die_count() as f64),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use temp_graph::models::ModelZoo;

    fn setup() -> (ModelConfig, Workload, WaferConfig) {
        let model = ModelZoo::gpt3_6_7b();
        let workload = Workload::for_model(&model);
        (model, workload, WaferConfig::hpca())
    }

    #[test]
    fn features_are_finite_and_fixed_dim() {
        let (model, workload, wafer) = setup();
        for cfg in [
            HybridConfig::tuple(2, 2, 1, 8),
            HybridConfig::tuple(32, 1, 1, 1),
            HybridConfig {
                dp: 4,
                fsdp: true,
                tatp: 8,
                ..Default::default()
            },
        ] {
            for mode in [RecomputeMode::Selective, RecomputeMode::Full] {
                let f = config_features(&model, &workload, &wafer, &cfg, 2, mode);
                assert_eq!(f.len(), CONFIG_FEATURE_DIM);
                assert!(f.iter().all(|v| v.is_finite()), "{f:?}");
            }
        }
    }

    #[test]
    fn distinct_keys_yield_distinct_features() {
        let (model, workload, wafer) = setup();
        let a = config_features(
            &model,
            &workload,
            &wafer,
            &HybridConfig::tuple(2, 2, 1, 8),
            2,
            RecomputeMode::Selective,
        );
        let b = config_features(
            &model,
            &workload,
            &wafer,
            &HybridConfig::tuple(4, 1, 1, 8),
            2,
            RecomputeMode::Selective,
        );
        assert_ne!(a, b);
        // Engine and recompute mode are part of the key, so they must
        // separate otherwise-identical configurations.
        let c = config_features(
            &model,
            &workload,
            &wafer,
            &HybridConfig::tuple(2, 2, 1, 8),
            0,
            RecomputeMode::Selective,
        );
        assert_ne!(a, c);
        let d = config_features(
            &model,
            &workload,
            &wafer,
            &HybridConfig::tuple(2, 2, 1, 8),
            2,
            RecomputeMode::Full,
        );
        assert_ne!(a, d);
    }

    #[test]
    fn fsdp_changes_the_parameter_shard_feature() {
        let (model, workload, wafer) = setup();
        let plain = HybridConfig::tuple(4, 1, 1, 8);
        let sharded = HybridConfig {
            fsdp: true,
            ..plain
        };
        let fp = config_features(
            &model,
            &workload,
            &wafer,
            &plain,
            2,
            RecomputeMode::Selective,
        );
        let fs = config_features(
            &model,
            &workload,
            &wafer,
            &sharded,
            2,
            RecomputeMode::Selective,
        );
        // Feature 9 is ln(param bytes per die); FSDP divides by dp more.
        assert!(fs[9] < fp[9]);
    }
}
