//! Cheap analytic features for one DLWS evaluation key.
//!
//! The two-tier search (paper §VII-A: surrogate queries are 100–1000x
//! faster than re-simulation) ranks a whole candidate batch by predicted
//! step time before the exact cost model runs on the survivors. For that
//! to pay off the features must cost microseconds: everything here is
//! closed-form arithmetic on the `(HybridConfig, engine, RecomputeMode)`
//! key and the context's fixed model/workload/wafer — no layout, no
//! routing, no contention simulation.
//!
//! Features are log-transformed where step time is near power-law in them
//! (per-die FLOPs, shard bytes, stream granularity), matching the
//! formulation the [`crate::linreg`]/[`crate::mlp`] predictors fit best.

use temp_graph::models::ModelConfig;
use temp_graph::segment::SegmentKind;
use temp_graph::workload::{RecomputeMode, Workload};
use temp_parallel::strategy::HybridConfig;
use temp_wsc::config::WaferConfig;

/// Number of features produced by [`config_features`] (the final two are
/// the expert-parallel degree and the all-to-all dispatch volume; both
/// collapse to constants on dense models).
pub const CONFIG_FEATURE_DIM: usize = 18;

/// Number of features produced by [`segment_features`] for one segment.
pub const SEGMENT_FEATURE_DIM: usize = 4;

/// Number of features produced by [`chain_features`]: the configuration
/// features plus the embedding, head and MoE-block segment summaries
/// (the MoE summary is all-zero for dense models, keeping one fixed
/// dimension across workloads).
pub const CHAIN_FEATURE_DIM: usize = CONFIG_FEATURE_DIM + 3 * SEGMENT_FEATURE_DIM;

/// Extracts the feature vector of one evaluation key.
///
/// `engine_code` is an opaque small integer distinguishing mapping
/// engines (this crate does not depend on `temp-mapping`); callers must
/// use a stable encoding.
pub fn config_features(
    model: &ModelConfig,
    workload: &Workload,
    wafer: &WaferConfig,
    cfg: &HybridConfig,
    engine_code: u8,
    mode: RecomputeMode,
) -> Vec<f64> {
    let ln = |v: f64| v.max(1e-12).ln();
    let (dp, tp, sp, cp, tatp, pp) = (
        cfg.dp.max(1) as f64,
        cfg.tp.max(1) as f64,
        cfg.sp.max(1) as f64,
        cfg.cp.max(1) as f64,
        cfg.tatp.max(1) as f64,
        cfg.pp.max(1) as f64,
    );
    let micro = workload.micro_batches.max(1) as f64;
    let dtype = workload.compute_dtype.bytes() as f64;
    let recompute_factor = match mode {
        RecomputeMode::Full => 4.0 / 3.0,
        _ => 1.0,
    };
    // Per-die shares of the three step-time drivers. The ep groups fold
    // into the batch dimension for dense work (the all-to-all rebalances
    // expert tokens, so total per-die flops stay ep-invariant).
    let ep_f = cfg.ep.max(1) as f64;
    let flops_per_die =
        workload.step_flops(model) * recompute_factor / (dp * ep_f * tp * sp * cp * tatp * pp);
    let weight_shard = dp * ep_f * tp * tatp * pp;
    let param_bytes_per_die = model.total_params() as f64 * dtype
        / if cfg.fsdp {
            weight_shard
        } else {
            tp * tatp * pp
        };
    let act_bytes_per_die =
        workload.micro_batch_size() as f64 * workload.seq_len as f64 * model.hidden as f64 * dtype
            / (dp * ep_f * sp * cp);
    // TATP stream granularity: the per-round weight chunk (§III-B — fine
    // chunks under-utilize the D2D links, the Fig. 9 tail).
    let stream_chunk =
        model.hidden as f64 * model.ffn_hidden as f64 * dtype / (tp * tatp * tatp * pp);
    // Expert parallelism: the degree and the all-to-all dispatch payload
    // each rank exchanges per micro-batch ((ep-1)/ep of the routed token
    // copies cross group boundaries). Zero-volume (ln floor) on dense
    // models and at ep = 1.
    let a2a_volume = match model.moe {
        Some(moe) if cfg.ep > 1 => {
            workload.micro_batch_size() as f64 * workload.seq_len as f64 / (dp * ep_f * sp * cp)
                * moe.top_k as f64
                * moe.capacity_factor
                * model.hidden as f64
                * dtype
                * (ep_f - 1.0)
                / ep_f
        }
        _ => 0.0,
    };
    vec![
        ln(dp),
        ln(tp),
        ln(sp * cp),
        ln(tatp),
        ln(pp),
        if cfg.fsdp { 1.0 } else { 0.0 },
        engine_code as f64,
        recompute_factor,
        ln(flops_per_die),
        ln(param_bytes_per_die),
        ln(act_bytes_per_die),
        ln(stream_chunk),
        // Ring factor of the DP gradient collective: (dp-1)/dp rounds.
        (dp - 1.0) / dp,
        // Pipeline bubble fraction: (pp-1)/(micro+pp-1).
        (pp - 1.0) / (micro + pp - 1.0),
        tatp,
        ln(wafer.die_count() as f64),
        ln(ep_f),
        ln(a2a_volume),
    ]
}

/// Cheap analytic cost drivers of one chain segment under a configuration
/// (§VII-A two-tier search over the *heterogeneous* segment chain).
///
/// The three segment kinds fail in different ways, so each gets its own
/// drivers:
///
/// * **Embedding** — vocab-parallel output all-reduce volume, its ring
///   factor, the sharded lookup traffic and the (row-sparse) gradient
///   exchange;
/// * **Block** — per-die GEMM FLOPs, the activation shard, the TP ring
///   factor and the TATP stream chunk (mirrors [`config_features`]);
/// * **Head** — per-die logits-GEMM FLOPs, the cross-entropy scalar
///   reduction, the tied-weight gradient all-reduce and the vocab shard.
///
/// All closed-form — no layout, no contention simulation — so a whole
/// candidate batch featurizes in microseconds.
pub fn segment_features(
    model: &ModelConfig,
    workload: &Workload,
    _wafer: &WaferConfig,
    cfg: &HybridConfig,
    kind: SegmentKind,
) -> Vec<f64> {
    let ln = |v: f64| v.max(1e-12).ln();
    let (dp, tp, spcp, tatp) = (
        cfg.dp.max(1) as f64,
        cfg.tp.max(1) as f64,
        (cfg.sp * cfg.cp).max(1) as f64,
        cfg.tatp.max(1) as f64,
    );
    let degree = dp * tp * spcp * tatp;
    let e = workload.compute_dtype.bytes() as f64;
    let tokens = workload.micro_batch_size() as f64 * workload.seq_len as f64;
    let tokens_local = tokens / (dp * spcp);
    let h = model.hidden as f64;
    let v = model.vocab as f64;
    let vocab_shard = tp * tatp;
    let ring = |g: f64| if g > 1.0 { 2.0 * (g - 1.0) / g } else { 0.0 };
    match kind {
        SegmentKind::Embedding => vec![
            // Vocab-parallel output all-reduce (zero when unsharded).
            ln(tokens_local * h * e * ring(vocab_shard)),
            ring(vocab_shard),
            ln(tokens * h * e / degree),
            // Row-sparse gradient exchange across DP replicas.
            ln(tokens_local * h * e * ring(dp)),
        ],
        SegmentKind::Block => vec![
            ln(workload.step_flops(model) / (model.layers.max(1) as f64 * degree)),
            ln(tokens_local * h * e / tatp),
            ring(tp),
            ln(h * model.ffn_hidden as f64 * e / (tp * tatp * tatp)),
        ],
        SegmentKind::Head => vec![
            // Per-die logits GEMM (fwd+bwd ~ 6 flops per MAC position).
            ln(6.0 * tokens * h * v / degree),
            // Cross-entropy max+sum exchange: two FP32 scalars per token.
            ln(tokens_local * 8.0 * ring(vocab_shard)),
            // Tied-weight dense gradient all-reduce across DP replicas.
            ln(h * v * e / vocab_shard * ring(dp)),
            ln(vocab_shard),
        ],
        SegmentKind::MoeBlock => {
            // All-zero on dense models so the chain feature vector keeps
            // one fixed dimension across workloads.
            let Some(moe) = model.moe else {
                return vec![0.0; SEGMENT_FEATURE_DIM];
            };
            let ep = cfg.ep.max(1) as f64;
            let routed = moe.top_k as f64 * moe.capacity_factor;
            let fe = moe.expert_ffn_hidden as f64;
            vec![
                // Per-die expert FFN flops: routed tokens sharded over the
                // full array (dense degrees x ep), three matrices each.
                ln(6.0 * tokens * routed * 3.0 * h * fe / (degree * ep)),
                // All-to-all dispatch payload per rank ((ep-1)/ep of the
                // dp x ep batch shard crosses group boundaries).
                ln(tokens_local / ep * routed * h * e * (ep - 1.0) / ep),
                // Locally stored expert weight bytes (E/ep experts).
                ln(moe.num_experts as f64 / ep * 3.0 * h * fe * e / vocab_shard),
                // Expert gradient sync volume across DP replicas.
                ln(moe.num_experts as f64 * 3.0 * h * fe * e / ep * ring(dp)),
            ]
        }
    }
}

/// The full heterogeneous-chain feature vector of one evaluation key:
/// [`config_features`] extended with the embedding and head segment
/// summaries, so a predictor trained on whole-chain step times can rank
/// candidates whose embedding/head economics differ from their blocks'.
pub fn chain_features(
    model: &ModelConfig,
    workload: &Workload,
    wafer: &WaferConfig,
    cfg: &HybridConfig,
    engine_code: u8,
    mode: RecomputeMode,
) -> Vec<f64> {
    let mut f = config_features(model, workload, wafer, cfg, engine_code, mode);
    f.extend(segment_features(
        model,
        workload,
        wafer,
        cfg,
        SegmentKind::Embedding,
    ));
    f.extend(segment_features(
        model,
        workload,
        wafer,
        cfg,
        SegmentKind::Head,
    ));
    f.extend(segment_features(
        model,
        workload,
        wafer,
        cfg,
        SegmentKind::MoeBlock,
    ));
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use temp_graph::models::ModelZoo;

    fn setup() -> (ModelConfig, Workload, WaferConfig) {
        let model = ModelZoo::gpt3_6_7b();
        let workload = Workload::for_model(&model);
        (model, workload, WaferConfig::hpca())
    }

    #[test]
    fn features_are_finite_and_fixed_dim() {
        let (model, workload, wafer) = setup();
        for cfg in [
            HybridConfig::tuple(2, 2, 1, 8),
            HybridConfig::tuple(32, 1, 1, 1),
            HybridConfig {
                dp: 4,
                fsdp: true,
                tatp: 8,
                ..Default::default()
            },
        ] {
            for mode in [RecomputeMode::Selective, RecomputeMode::Full] {
                let f = config_features(&model, &workload, &wafer, &cfg, 2, mode);
                assert_eq!(f.len(), CONFIG_FEATURE_DIM);
                assert!(f.iter().all(|v| v.is_finite()), "{f:?}");
            }
        }
    }

    #[test]
    fn distinct_keys_yield_distinct_features() {
        let (model, workload, wafer) = setup();
        let a = config_features(
            &model,
            &workload,
            &wafer,
            &HybridConfig::tuple(2, 2, 1, 8),
            2,
            RecomputeMode::Selective,
        );
        let b = config_features(
            &model,
            &workload,
            &wafer,
            &HybridConfig::tuple(4, 1, 1, 8),
            2,
            RecomputeMode::Selective,
        );
        assert_ne!(a, b);
        // Engine and recompute mode are part of the key, so they must
        // separate otherwise-identical configurations.
        let c = config_features(
            &model,
            &workload,
            &wafer,
            &HybridConfig::tuple(2, 2, 1, 8),
            0,
            RecomputeMode::Selective,
        );
        assert_ne!(a, c);
        let d = config_features(
            &model,
            &workload,
            &wafer,
            &HybridConfig::tuple(2, 2, 1, 8),
            2,
            RecomputeMode::Full,
        );
        assert_ne!(a, d);
    }

    #[test]
    fn chain_features_extend_config_features() {
        let (model, workload, wafer) = setup();
        let cfg = HybridConfig::tuple(2, 2, 1, 8);
        let f = chain_features(&model, &workload, &wafer, &cfg, 2, RecomputeMode::Selective);
        assert_eq!(f.len(), CHAIN_FEATURE_DIM);
        assert!(f.iter().all(|v| v.is_finite()), "{f:?}");
        let base = config_features(&model, &workload, &wafer, &cfg, 2, RecomputeMode::Selective);
        assert_eq!(&f[..CONFIG_FEATURE_DIM], &base[..]);
    }

    #[test]
    fn segment_features_separate_kinds_and_configs() {
        let (model, workload, wafer) = setup();
        let cfg = HybridConfig::tuple(2, 2, 1, 8);
        let emb = segment_features(&model, &workload, &wafer, &cfg, SegmentKind::Embedding);
        let blk = segment_features(&model, &workload, &wafer, &cfg, SegmentKind::Block);
        let head = segment_features(&model, &workload, &wafer, &cfg, SegmentKind::Head);
        for f in [&emb, &blk, &head] {
            assert_eq!(f.len(), SEGMENT_FEATURE_DIM);
            assert!(f.iter().all(|v| v.is_finite()), "{f:?}");
        }
        assert_ne!(emb, blk);
        assert_ne!(blk, head);
        // A pure-DP configuration pays no vocab-parallel all-reduce at the
        // embedding; a TATP-heavy one does.
        let dp_only = segment_features(
            &model,
            &workload,
            &wafer,
            &HybridConfig::tuple(32, 1, 1, 1),
            SegmentKind::Embedding,
        );
        assert!(dp_only[1] == 0.0, "{dp_only:?}");
        assert!(emb[1] > 0.0, "{emb:?}");
    }

    #[test]
    fn fsdp_changes_the_parameter_shard_feature() {
        let (model, workload, wafer) = setup();
        let plain = HybridConfig::tuple(4, 1, 1, 8);
        let sharded = HybridConfig {
            fsdp: true,
            ..plain
        };
        let fp = config_features(
            &model,
            &workload,
            &wafer,
            &plain,
            2,
            RecomputeMode::Selective,
        );
        let fs = config_features(
            &model,
            &workload,
            &wafer,
            &sharded,
            2,
            RecomputeMode::Selective,
        );
        // Feature 9 is ln(param bytes per die); FSDP divides by dp more.
        assert!(fs[9] < fp[9]);
    }
}
