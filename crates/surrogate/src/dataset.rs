//! Simulator-generated datasets for the three Fig. 21 latency classes.
//!
//! "By varying parameters such as batch size, sequence length, and hidden
//! size, we generate 500 unique test cases" (§VIII-G). Features are the
//! log-transformed sweep parameters plus derived quantities (FLOPs, bytes —
//! latency is near power-law in these); targets are the simulator's
//! latencies.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use temp_graph::tensor::{DType, LinearDims};
use temp_sim::collectives::{Collective, CollectiveKind};
use temp_sim::compute::ComputeModel;
use temp_wsc::config::WaferConfig;
use temp_wsc::rings::snake_order;
use temp_wsc::topology::DieId;

/// Which latency the samples measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TargetClass {
    /// Single-operator computation latency (GEMM/GEMV/softmax/SiLU mix).
    Compute,
    /// Collective communication latency (all-reduce/-gather/reduce-scatter/P2P).
    Collective,
    /// Latency with computation/communication overlap (GEMM + TATP stream).
    Overlap,
}

/// A feature-matrix/target-vector dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Row-major feature matrix.
    pub features: Vec<Vec<f64>>,
    /// Target latencies in seconds.
    pub targets: Vec<f64>,
    /// Class generated.
    pub class: TargetClass,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Feature dimensionality.
    pub fn feature_dim(&self) -> usize {
        self.features.first().map(Vec::len).unwrap_or(0)
    }

    /// Splits into (train, test) at `fraction` of the samples.
    pub fn split(&self, fraction: f64) -> (Dataset, Dataset) {
        let cut = ((self.len() as f64) * fraction).round() as usize;
        let (tf, sf) = self.features.split_at(cut.min(self.len()));
        let (tt, st) = self.targets.split_at(cut.min(self.len()));
        (
            Dataset {
                features: tf.to_vec(),
                targets: tt.to_vec(),
                class: self.class,
            },
            Dataset {
                features: sf.to_vec(),
                targets: st.to_vec(),
                class: self.class,
            },
        )
    }
}

/// Generates `n` samples of a class, deterministically in `seed`.
pub fn generate(class: TargetClass, n: usize, seed: u64) -> Dataset {
    let cfg = WaferConfig::hpca();
    let compute = ComputeModel::new(&cfg);
    let mesh = cfg.mesh();
    let sim = temp_sim::network::ContentionSim::new(&cfg);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut features = Vec::with_capacity(n);
    let mut targets = Vec::with_capacity(n);
    for _ in 0..n {
        let b = 1u64 << rng.gen_range(0..6); // 1..32
        let m = 1u64 << rng.gen_range(6..13); // 64..4096
        let k = 1u64 << rng.gen_range(8..14); // 256..8192
        let h = 1u64 << rng.gen_range(10..14); // 1024..8192
        let dims = LinearDims::new(b, m, h, k);
        let flops = dims.flops();
        let bytes = dims.input_bytes(DType::F16)
            + dims.weight_bytes(DType::F16)
            + dims.output_bytes(DType::F16);
        match class {
            TargetClass::Compute => {
                let t = compute.gemm_latency_raw(flops, bytes);
                features.push(vec![
                    (b as f64).ln(),
                    (m as f64).ln(),
                    (h as f64).ln(),
                    (k as f64).ln(),
                    flops.ln(),
                    bytes.ln(),
                ]);
                targets.push(t);
            }
            TargetClass::Collective => {
                let group_size = 1usize << rng.gen_range(1..4); // 2..8
                let group: Vec<DieId> = snake_order(&mesh).into_iter().take(group_size).collect();
                let kind = match rng.gen_range(0..4) {
                    0 => CollectiveKind::AllReduce,
                    1 => CollectiveKind::AllGather,
                    2 => CollectiveKind::ReduceScatter,
                    _ => CollectiveKind::P2pShift,
                };
                let payload = dims.input_bytes(DType::F16);
                let c = Collective::new(kind, group, payload);
                let t = c.simulate(&sim, &mesh);
                features.push(vec![
                    group_size as f64,
                    kind_code(kind),
                    payload.ln(),
                    (payload / group_size as f64).ln(),
                ]);
                targets.push(t.max(1e-9));
            }
            TargetClass::Overlap => {
                let tatp = 1usize << rng.gen_range(1..4); // 2..8
                let comp = compute.gemm_latency_raw(flops / tatp as f64, bytes / tatp as f64);
                let chunk = dims.weight_bytes(DType::F16) / tatp as f64;
                let stream = cfg.d2d.transfer_time(chunk);
                // Eq. 2 shape: per-round max of compute and stream, summed.
                let t = tatp as f64 * comp.max(stream);
                features.push(vec![
                    (b as f64).ln(),
                    (m as f64).ln(),
                    (h as f64).ln(),
                    (k as f64).ln(),
                    tatp as f64,
                    flops.ln(),
                    chunk.ln(),
                ]);
                targets.push(t);
            }
        }
    }
    Dataset {
        features,
        targets,
        class,
    }
}

fn kind_code(kind: CollectiveKind) -> f64 {
    match kind {
        CollectiveKind::AllReduce => 0.0,
        CollectiveKind::AllGather => 1.0,
        CollectiveKind::ReduceScatter => 2.0,
        CollectiveKind::Broadcast => 3.0,
        CollectiveKind::P2pShift => 4.0,
        CollectiveKind::AllToAll => 5.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(TargetClass::Compute, 50, 1);
        let b = generate(TargetClass::Compute, 50, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn all_classes_produce_positive_targets() {
        for class in [
            TargetClass::Compute,
            TargetClass::Collective,
            TargetClass::Overlap,
        ] {
            let d = generate(class, 40, 3);
            assert_eq!(d.len(), 40);
            assert!(d.targets.iter().all(|t| *t > 0.0), "{class:?}");
            assert!(d.feature_dim() >= 4);
        }
    }

    #[test]
    fn split_preserves_counts() {
        let d = generate(TargetClass::Overlap, 100, 5);
        let (train, test) = d.split(0.8);
        assert_eq!(train.len(), 80);
        assert_eq!(test.len(), 20);
    }
}
