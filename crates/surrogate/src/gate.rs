//! The surrogate gate's predictor family: which model a per-batch fit
//! uses, and a tier-agnostic handle that can be persisted across search
//! contexts.
//!
//! The two-tier search fits a fresh predictor on every gated batch
//! (stride-sampled exact costs). [`GateModel`] selects the family:
//! [`GateModel::LinReg`] (the default — fast, and empirically sufficient
//! for winner retention across the model zoos) or [`GateModel::Mlp`],
//! the §VII-A DNN at gate-sized training settings. The fitted
//! [`GatePredictor`] serializes to the same line-oriented text format as
//! its underlying model, so a warm predictor can cross contexts (or
//! processes) and skip the refit entirely.
//!
//! LinReg stays the default until the MLP wins on the recorded
//! rank-of-winner statistics (`adaptive_top_k` in `BENCH_search.json`):
//! promoting by measurement, not by architecture.

use crate::dataset::Dataset;
use crate::linreg::LinearRegression;
use crate::mlp::{Mlp, TrainParams};

/// Which predictor family the surrogate gate fits per batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GateModel {
    /// Ridge-damped linear regression on log targets (the default).
    #[default]
    LinReg,
    /// The `temp_surrogate::mlp` network at gate-sized training settings
    /// (small hidden width, few epochs — a per-batch fit must stay in the
    /// microsecond-to-millisecond range).
    Mlp,
}

/// MLP training settings for per-batch gate fits: far smaller than the
/// Fig. 21 offline settings, because the gate refits on every cold batch.
pub fn gate_mlp_params() -> TrainParams {
    TrainParams {
        hidden: 12,
        epochs: 400,
        learning_rate: 1e-2,
        seed: 17,
    }
}

/// A fitted gate predictor of either family.
#[derive(Debug, Clone, PartialEq)]
pub enum GatePredictor {
    /// A fitted linear regression.
    LinReg(LinearRegression),
    /// A fitted MLP.
    Mlp(Box<Mlp>),
}

impl GatePredictor {
    /// Fits the selected model family on a dataset.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset (like the underlying fits).
    pub fn fit(model: GateModel, data: &Dataset) -> Self {
        match model {
            GateModel::LinReg => GatePredictor::LinReg(LinearRegression::fit(data)),
            GateModel::Mlp => GatePredictor::Mlp(Box::new(Mlp::train(data, &gate_mlp_params()))),
        }
    }

    /// The family this predictor belongs to.
    pub fn model(&self) -> GateModel {
        match self {
            GatePredictor::LinReg(_) => GateModel::LinReg,
            GatePredictor::Mlp(_) => GateModel::Mlp,
        }
    }

    /// Predicts one latency (seconds).
    pub fn predict(&self, features: &[f64]) -> f64 {
        match self {
            GatePredictor::LinReg(m) => m.predict(features),
            GatePredictor::Mlp(m) => m.predict(features),
        }
    }

    /// The feature dimension the predictor was fitted on — importing a
    /// persisted predictor into a context with a different feature layout
    /// must be rejected, not silently mis-predicted.
    pub fn feature_dim(&self) -> usize {
        match self {
            GatePredictor::LinReg(m) => m.feature_dim(),
            GatePredictor::Mlp(m) => m.feature_dim(),
        }
    }

    /// Serializes to the underlying model's text format (the header tags
    /// the family, so [`GatePredictor::from_text`] dispatches on it).
    pub fn to_text(&self) -> String {
        match self {
            GatePredictor::LinReg(m) => m.to_text(),
            GatePredictor::Mlp(m) => m.to_text(),
        }
    }

    /// Parses a predictor persisted by [`GatePredictor::to_text`],
    /// dispatching on the header's family tag.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_text(text: &str) -> Result<Self, String> {
        match text.split_whitespace().next() {
            Some("linreg") => LinearRegression::from_text(text).map(GatePredictor::LinReg),
            Some("mlp") => Mlp::from_text(text).map(|m| GatePredictor::Mlp(Box::new(m))),
            other => Err(format!("unknown predictor family: {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{generate, TargetClass};
    use crate::metrics::pearson;

    #[test]
    fn both_families_fit_and_round_trip() {
        let data = generate(TargetClass::Compute, 150, 13);
        let (train, test) = data.split(0.8);
        for model in [GateModel::LinReg, GateModel::Mlp] {
            let p = GatePredictor::fit(model, &train);
            assert_eq!(p.model(), model);
            assert_eq!(p.feature_dim(), train.feature_dim());
            let pred: Vec<f64> = test.features.iter().map(|f| p.predict(f)).collect();
            assert!(
                pearson(&pred, &test.targets) > 0.75,
                "{model:?} fit too weak"
            );
            // Text round trip is bit-exact.
            let back = GatePredictor::from_text(&p.to_text()).unwrap();
            assert_eq!(p, back);
            for f in test.features.iter().take(8) {
                assert_eq!(p.predict(f).to_bits(), back.predict(f).to_bits());
            }
        }
        assert!(GatePredictor::from_text("bogus v1").is_err());
        assert!(GatePredictor::from_text("").is_err());
    }

    #[test]
    fn default_family_is_linreg() {
        // LinReg stays the default until the MLP wins on rank-of-winner
        // statistics (ROADMAP).
        assert_eq!(GateModel::default(), GateModel::LinReg);
    }
}
