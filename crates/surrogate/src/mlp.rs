//! A small feed-forward network with manual backprop and Adam — the DNN
//! cost model of §VII-A.
//!
//! Architecture: standardized features → two tanh hidden layers → scalar
//! log-latency. Training is deterministic in the seed. Inference is a few
//! hundred nanoseconds — the paper's "lookup time of a few hundred
//! microseconds" covers feature assembly too, and either way beats
//! re-simulation by 100–1000x.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;

/// Feature standardization (z-score).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Standardizer {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl Standardizer {
    /// Fits per-feature mean/std.
    ///
    /// # Panics
    ///
    /// Panics on an empty feature matrix.
    pub fn fit(features: &[Vec<f64>]) -> Self {
        assert!(!features.is_empty(), "empty feature matrix");
        let d = features[0].len();
        let n = features.len() as f64;
        let mut mean = vec![0.0; d];
        for f in features {
            for (m, v) in mean.iter_mut().zip(f) {
                *m += v / n;
            }
        }
        let mut std = vec![0.0; d];
        for f in features {
            for ((s, v), m) in std.iter_mut().zip(f).zip(&mean) {
                *s += (v - m).powi(2) / n;
            }
        }
        for s in std.iter_mut() {
            *s = s.sqrt().max(1e-9);
        }
        Standardizer { mean, std }
    }

    /// Standardizes one feature vector.
    pub fn apply(&self, f: &[f64]) -> Vec<f64> {
        f.iter()
            .zip(self.mean.iter().zip(&self.std))
            .map(|(v, (m, s))| (v - m) / s)
            .collect()
    }

    /// Reassembles a standardizer from its parameters (deserialization).
    pub fn from_parts(mean: Vec<f64>, std: Vec<f64>) -> Self {
        Standardizer { mean, std }
    }

    /// Per-feature means.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Per-feature standard deviations.
    pub fn std(&self) -> &[f64] {
        &self.std
    }
}

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainParams {
    /// Hidden width of both layers.
    pub hidden: usize,
    /// Full-batch epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// RNG seed for initialization.
    pub seed: u64,
}

impl Default for TrainParams {
    fn default() -> Self {
        TrainParams {
            hidden: 24,
            epochs: 4000,
            learning_rate: 5e-3,
            seed: 17,
        }
    }
}

/// The trained network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    w1: Vec<Vec<f64>>, // hidden x input
    b1: Vec<f64>,
    w2: Vec<Vec<f64>>, // hidden x hidden
    b2: Vec<f64>,
    w3: Vec<f64>, // hidden
    b3: f64,
    norm: Standardizer,
}

impl Mlp {
    /// Trains on log-latency targets with full-batch Adam.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset.
    pub fn train(data: &Dataset, params: &TrainParams) -> Self {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        let norm = Standardizer::fit(&data.features);
        let x: Vec<Vec<f64>> = data.features.iter().map(|f| norm.apply(f)).collect();
        let y: Vec<f64> = data.targets.iter().map(|t| t.max(1e-12).ln()).collect();
        let d = x[0].len();
        let h = params.hidden;
        let mut rng = StdRng::seed_from_u64(params.seed);
        let init = |fan_in: usize| {
            let scale = (1.0 / fan_in as f64).sqrt();
            move |rng: &mut StdRng| rng.gen_range(-1.0..1.0) * scale
        };
        let g1 = init(d);
        let mut w1: Vec<Vec<f64>> = (0..h)
            .map(|_| (0..d).map(|_| g1(&mut rng)).collect())
            .collect();
        let mut b1 = vec![0.0; h];
        let g2 = init(h);
        let mut w2: Vec<Vec<f64>> = (0..h)
            .map(|_| (0..h).map(|_| g2(&mut rng)).collect())
            .collect();
        let mut b2 = vec![0.0; h];
        let g3 = init(h);
        let mut w3: Vec<f64> = (0..h).map(|_| g3(&mut rng)).collect();
        let mut b3 = 0.0;

        // Adam state, one flat vector per tensor.
        let mut adam = AdamState::new(h * d + h + h * h + h + h + 1);
        let n = x.len() as f64;

        for _epoch in 0..params.epochs {
            // Accumulate full-batch gradients.
            let mut d_w1 = vec![vec![0.0; d]; h];
            let mut d_b1 = vec![0.0; h];
            let mut d_w2 = vec![vec![0.0; h]; h];
            let mut d_b2 = vec![0.0; h];
            let mut d_w3 = vec![0.0; h];
            let mut d_b3 = 0.0;
            for (xi, &yi) in x.iter().zip(&y) {
                // Forward.
                let a1: Vec<f64> = (0..h)
                    .map(|i| (b1[i] + w1[i].iter().zip(xi).map(|(w, v)| w * v).sum::<f64>()).tanh())
                    .collect();
                let a2: Vec<f64> = (0..h)
                    .map(|i| {
                        (b2[i] + w2[i].iter().zip(&a1).map(|(w, v)| w * v).sum::<f64>()).tanh()
                    })
                    .collect();
                let out = b3 + w3.iter().zip(&a2).map(|(w, v)| w * v).sum::<f64>();
                // Backward (MSE in log space).
                let err = 2.0 * (out - yi) / n;
                d_b3 += err;
                for i in 0..h {
                    d_w3[i] += err * a2[i];
                }
                let mut delta2 = vec![0.0; h];
                for i in 0..h {
                    delta2[i] = err * w3[i] * (1.0 - a2[i] * a2[i]);
                    d_b2[i] += delta2[i];
                    for j in 0..h {
                        d_w2[i][j] += delta2[i] * a1[j];
                    }
                }
                for j in 0..h {
                    let mut upstream = 0.0;
                    for i in 0..h {
                        upstream += delta2[i] * w2[i][j];
                    }
                    let delta1 = upstream * (1.0 - a1[j] * a1[j]);
                    d_b1[j] += delta1;
                    for kk in 0..d {
                        d_w1[j][kk] += delta1 * xi[kk];
                    }
                }
            }
            // Adam step over the flattened parameter vector.
            let mut params_flat: Vec<&mut f64> = Vec::new();
            let mut grads_flat: Vec<f64> = Vec::new();
            for (row, grow) in w1.iter_mut().zip(&d_w1) {
                for (p, g) in row.iter_mut().zip(grow) {
                    params_flat.push(p);
                    grads_flat.push(*g);
                }
            }
            for (p, g) in b1.iter_mut().zip(&d_b1) {
                params_flat.push(p);
                grads_flat.push(*g);
            }
            for (row, grow) in w2.iter_mut().zip(&d_w2) {
                for (p, g) in row.iter_mut().zip(grow) {
                    params_flat.push(p);
                    grads_flat.push(*g);
                }
            }
            for (p, g) in b2.iter_mut().zip(&d_b2) {
                params_flat.push(p);
                grads_flat.push(*g);
            }
            for (p, g) in w3.iter_mut().zip(&d_w3) {
                params_flat.push(p);
                grads_flat.push(*g);
            }
            params_flat.push(&mut b3);
            grads_flat.push(d_b3);
            adam.step(&mut params_flat, &grads_flat, params.learning_rate);
        }
        Mlp {
            w1,
            b1,
            w2,
            b2,
            w3,
            b3,
            norm,
        }
    }

    /// Predicts one latency (seconds).
    pub fn predict(&self, features: &[f64]) -> f64 {
        let x = self.norm.apply(features);
        let h = self.b1.len();
        let a1: Vec<f64> = (0..h)
            .map(|i| {
                (self.b1[i] + self.w1[i].iter().zip(&x).map(|(w, v)| w * v).sum::<f64>()).tanh()
            })
            .collect();
        let a2: Vec<f64> = (0..h)
            .map(|i| {
                (self.b2[i] + self.w2[i].iter().zip(&a1).map(|(w, v)| w * v).sum::<f64>()).tanh()
            })
            .collect();
        let log = self.b3 + self.w3.iter().zip(&a2).map(|(w, v)| w * v).sum::<f64>();
        log.exp()
    }

    /// Predicts every sample of a dataset.
    pub fn predict_all(&self, data: &Dataset) -> Vec<f64> {
        data.features.iter().map(|f| self.predict(f)).collect()
    }

    /// The feature dimension the network was trained on.
    pub fn feature_dim(&self) -> usize {
        self.w1.first().map(Vec::len).unwrap_or(0)
    }

    /// Serializes the trained network to a line-oriented text format (the
    /// vendored `serde` stand-in has no real serialization; this is the
    /// same portable representation [`crate::linreg`] uses).
    ///
    /// Format: an `mlp v1 <input> <hidden>` header, then one
    /// whitespace-separated row per `w1` hidden unit, the `b1` row, one
    /// row per `w2` hidden unit, the `b2` row, the `w3` row, the scalar
    /// `b3`, and the standardizer's mean/std rows. Floats round-trip
    /// exactly (shortest `{:?}` representation).
    pub fn to_text(&self) -> String {
        let row = |vs: &[f64]| {
            vs.iter()
                .map(|v| format!("{v:?}"))
                .collect::<Vec<_>>()
                .join(" ")
        };
        let d = self.w1.first().map(Vec::len).unwrap_or(0);
        let h = self.b1.len();
        let mut out = format!("mlp v1 {d} {h}\n");
        for r in &self.w1 {
            out.push_str(&row(r));
            out.push('\n');
        }
        out.push_str(&row(&self.b1));
        out.push('\n');
        for r in &self.w2 {
            out.push_str(&row(r));
            out.push('\n');
        }
        out.push_str(&row(&self.b2));
        out.push('\n');
        out.push_str(&row(&self.w3));
        out.push('\n');
        out.push_str(&format!("{:?}\n", self.b3));
        out.push_str(&row(self.norm.mean()));
        out.push('\n');
        out.push_str(&row(self.norm.std()));
        out.push('\n');
        out
    }

    /// Parses a network serialized by [`Mlp::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_text(text: &str) -> std::result::Result<Self, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty predictor text")?;
        let mut parts = header.split_whitespace();
        if (parts.next(), parts.next()) != (Some("mlp"), Some("v1")) {
            return Err(format!("unsupported predictor header: {header}"));
        }
        let d: usize = parts
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or("missing input dimension in header")?;
        let h: usize = parts
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or("missing hidden width in header")?;
        let mut parse_row = |what: &str, dim: usize| -> std::result::Result<Vec<f64>, String> {
            let line = lines.next().ok_or(format!("missing {what} row"))?;
            let vals: Vec<f64> = line
                .split_whitespace()
                .map(|v| v.parse::<f64>().map_err(|e| format!("{what}: {e}")))
                .collect::<std::result::Result<_, _>>()?;
            if vals.len() != dim {
                return Err(format!("{what}: expected {dim} values, got {}", vals.len()));
            }
            if let Some(bad) = vals.iter().find(|v| !v.is_finite()) {
                return Err(format!("{what}: non-finite value {bad}"));
            }
            Ok(vals)
        };
        let w1: Vec<Vec<f64>> = (0..h)
            .map(|i| parse_row(&format!("w1[{i}]"), d))
            .collect::<std::result::Result<_, _>>()?;
        let b1 = parse_row("b1", h)?;
        let w2: Vec<Vec<f64>> = (0..h)
            .map(|i| parse_row(&format!("w2[{i}]"), h))
            .collect::<std::result::Result<_, _>>()?;
        let b2 = parse_row("b2", h)?;
        let w3 = parse_row("w3", h)?;
        let b3 = parse_row("b3", 1)?[0];
        let mean = parse_row("mean", d)?;
        let std = parse_row("std", d)?;
        if let Some(bad) = std.iter().find(|s| **s <= 0.0) {
            return Err(format!("std: non-positive value {bad}"));
        }
        Ok(Mlp {
            w1,
            b1,
            w2,
            b2,
            w3,
            b3,
            norm: Standardizer::from_parts(mean, std),
        })
    }
}

/// Flat-vector Adam optimizer state.
#[derive(Debug, Clone)]
struct AdamState {
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl AdamState {
    fn new(len: usize) -> Self {
        AdamState {
            m: vec![0.0; len],
            v: vec![0.0; len],
            t: 0,
        }
    }

    fn step(&mut self, params: &mut [&mut f64], grads: &[f64], lr: f64) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        self.t += 1;
        let bc1 = 1.0 - B1.powi(self.t as i32);
        let bc2 = 1.0 - B2.powi(self.t as i32);
        for ((p, &g), (m, v)) in params
            .iter_mut()
            .zip(grads)
            .zip(self.m.iter_mut().zip(self.v.iter_mut()))
        {
            *m = B1 * *m + (1.0 - B1) * g;
            *v = B2 * *v + (1.0 - B2) * g * g;
            let mhat = *m / bc1;
            let vhat = *v / bc2;
            **p -= lr * mhat / (vhat.sqrt() + EPS);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{generate, TargetClass};
    use crate::linreg::LinearRegression;
    use crate::metrics::{mean_relative_error, pearson};

    #[test]
    fn standardizer_zero_means_unit_std() {
        let features = vec![vec![1.0, 10.0], vec![3.0, 30.0], vec![5.0, 50.0]];
        let s = Standardizer::fit(&features);
        let z: Vec<Vec<f64>> = features.iter().map(|f| s.apply(f)).collect();
        let mean0: f64 = z.iter().map(|r| r[0]).sum::<f64>() / 3.0;
        assert!(mean0.abs() < 1e-12);
    }

    #[test]
    fn mlp_beats_linear_regression_on_compute_latency() {
        // The Fig. 21 headline: DNN corr > baseline corr, error ~3x lower.
        let data = generate(TargetClass::Compute, 300, 21);
        let (train, test) = data.split(0.8);
        let mlp = Mlp::train(&train, &TrainParams::default());
        let lr = LinearRegression::fit(&train);
        let mlp_pred = mlp.predict_all(&test);
        let lr_pred = lr.predict_all(&test);
        let mlp_err = mean_relative_error(&mlp_pred, &test.targets);
        let lr_err = mean_relative_error(&lr_pred, &test.targets);
        assert!(
            mlp_err < lr_err,
            "MLP err {mlp_err:.3} must beat linreg err {lr_err:.3}"
        );
        assert!(pearson(&mlp_pred, &test.targets) > 0.97);
    }

    #[test]
    fn training_is_deterministic() {
        let data = generate(TargetClass::Collective, 60, 4);
        let params = TrainParams {
            epochs: 30,
            ..Default::default()
        };
        let a = Mlp::train(&data, &params);
        let b = Mlp::train(&data, &params);
        assert_eq!(a.predict(&data.features[0]), b.predict(&data.features[0]));
    }
}
