//! Criterion micro-benchmarks of TEMP's planning kernels: TATP
//! orchestration construction/validation, the traffic optimizer, the
//! contention simulator, chain DP, and cost-model evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use temp_graph::models::ModelZoo;
use temp_graph::workload::Workload;
use temp_mapping::comm::TaggedFlow;
use temp_mapping::engines::MappingEngine;
use temp_mapping::optimizer::TrafficOptimizer;
use temp_parallel::strategy::HybridConfig;
use temp_parallel::tatp::TatpOrchestration;
use temp_sim::network::{ContentionSim, Flow};
use temp_solver::cost::WaferCostModel;
use temp_solver::dp::solve_chain;
use temp_wsc::config::WaferConfig;
use temp_wsc::topology::DieId;

fn bench_tatp_orchestration(c: &mut Criterion) {
    let mut g = c.benchmark_group("tatp_orchestration");
    for n in [8usize, 16, 32] {
        g.bench_with_input(BenchmarkId::new("build+validate", n), &n, |b, &n| {
            b.iter(|| {
                let orch = TatpOrchestration::build(n);
                orch.validate().expect("valid")
            })
        });
    }
    g.finish();
}

fn bench_contention_sim(c: &mut Criterion) {
    let cfg = WaferConfig::hpca();
    let mesh = cfg.mesh();
    let sim = ContentionSim::new(&cfg);
    let flows: Vec<Flow> = (0..16u32)
        .map(|i| Flow::xy(&mesh, DieId(i), DieId(31 - i), 64.0e6))
        .collect();
    c.bench_function("contention_sim_16_flows", |b| b.iter(|| sim.simulate(&flows)));
}

fn bench_traffic_optimizer(c: &mut Criterion) {
    let cfg = WaferConfig::hpca();
    let mesh = cfg.mesh();
    let opt = TrafficOptimizer::new(mesh.clone());
    let flows: Vec<TaggedFlow> = (0..12u32)
        .map(|i| TaggedFlow {
            flow: Flow::xy(&mesh, DieId(i % 8), DieId(16 + (i % 8)), 32.0e6),
            payload: i as u64,
        })
        .collect();
    c.bench_function("traffic_optimizer_12_flows", |b| {
        b.iter(|| opt.optimize(flows.clone()))
    });
}

fn bench_chain_dp(c: &mut Criterion) {
    let costs: Vec<Vec<f64>> =
        (0..96).map(|s| (0..24).map(|k| ((s * k) % 17) as f64 + 1.0).collect()).collect();
    c.bench_function("chain_dp_96x24", |b| {
        b.iter(|| solve_chain(&costs, |a, b| if a == b { 0.0 } else { 0.5 }))
    });
}

fn bench_cost_model(c: &mut Criterion) {
    let model = ModelZoo::gpt3_6_7b();
    let cost =
        WaferCostModel::new(WaferConfig::hpca(), model.clone(), Workload::for_model(&model));
    let cfg = HybridConfig::tuple(2, 2, 1, 8);
    c.bench_function("cost_model_evaluate", |b| {
        b.iter(|| cost.evaluate(&cfg, MappingEngine::Tcme).expect("feasible"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_tatp_orchestration,
        bench_contention_sim,
        bench_traffic_optimizer,
        bench_chain_dp,
        bench_cost_model
}
criterion_main!(benches);
