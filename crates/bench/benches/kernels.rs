//! Micro-benchmarks of TEMP's planning kernels: TATP orchestration
//! construction/validation, the traffic optimizer, the contention
//! simulator, chain DP, and cost-model evaluation.
//!
//! Self-harnessed (`harness = false`): the offline build environment has
//! no criterion, so [`temp_bench::timeit`] provides warm-up + repeated
//! measurement and each kernel prints one summary line. Run with
//! `cargo bench -p temp-bench`.

use temp_bench::timeit;
use temp_graph::models::ModelZoo;
use temp_graph::workload::Workload;
use temp_mapping::comm::TaggedFlow;
use temp_mapping::engines::MappingEngine;
use temp_mapping::optimizer::TrafficOptimizer;
use temp_parallel::strategy::HybridConfig;
use temp_parallel::tatp::TatpOrchestration;
use temp_sim::network::{ContentionSim, Flow};
use temp_solver::cost::WaferCostModel;
use temp_solver::dp::solve_chain;
use temp_wsc::config::WaferConfig;
use temp_wsc::topology::DieId;

fn main() {
    for n in [8usize, 16, 32] {
        timeit(
            &format!("tatp_orchestration/build+validate/{n}"),
            10,
            || {
                let orch = TatpOrchestration::build(n);
                orch.validate().expect("valid")
            },
        );
    }

    let cfg = WaferConfig::hpca();
    let mesh = cfg.mesh();
    let sim = ContentionSim::new(&cfg);
    let flows: Vec<Flow> = (0..16u32)
        .map(|i| Flow::xy(&mesh, DieId(i), DieId(31 - i), 64.0e6))
        .collect();
    timeit("contention_sim_16_flows", 10, || sim.simulate(&flows));

    let opt = TrafficOptimizer::new(mesh.clone());
    let tagged: Vec<TaggedFlow> = (0..12u32)
        .map(|i| TaggedFlow {
            flow: Flow::xy(&mesh, DieId(i % 8), DieId(16 + (i % 8)), 32.0e6),
            payload: i as u64,
        })
        .collect();
    timeit("traffic_optimizer_12_flows", 10, || {
        opt.optimize(tagged.clone())
    });

    let costs: Vec<Vec<f64>> = (0..96)
        .map(|s| (0..24).map(|k| ((s * k) % 17) as f64 + 1.0).collect())
        .collect();
    timeit("chain_dp_96x24", 10, || {
        solve_chain(&costs, |_, a, b| if a == b { 0.0 } else { 0.5 }).expect("well-formed")
    });

    let model = ModelZoo::gpt3_6_7b();
    let cost = WaferCostModel::new(
        WaferConfig::hpca(),
        model.clone(),
        Workload::for_model(&model),
    );
    let hybrid = HybridConfig::tuple(2, 2, 1, 8);
    timeit("cost_model_evaluate", 10, || {
        cost.evaluate(&hybrid, MappingEngine::Tcme)
            .expect("feasible")
    });
}
