//! Fig. 18: does the optimal TATP degree converge to 8-16 across GPT-3
//! scales and sequence lengths?
//!
//! The grid runs through one [`ContextPool`]: every `(model, workload)`
//! cell gets a pooled search context, so the wafer-level candidate
//! enumeration is computed once for the whole figure and each cell's
//! batch costing fills a reusable evaluation cache.

use temp_bench::header;
use temp_graph::models::ModelZoo;
use temp_graph::workload::Workload;
use temp_mapping::engines::MappingEngine;
use temp_parallel::strategy::HybridConfig;
use temp_solver::pool::ContextPool;
use temp_wsc::config::WaferConfig;

fn main() {
    header("Fig. 18: best configurations per model x sequence length");
    println!(
        "{:<16} {:>6} {:>14} {:>12} {:>18}",
        "model", "seq", "best (D,T,S,TA)", "TATP degree", "gain vs no-TATP"
    );
    let pool = ContextPool::new(WaferConfig::hpca());
    for model in [
        ModelZoo::gpt3_6_7b(),
        ModelZoo::gpt3_76b(),
        ModelZoo::gpt3_175b(),
    ] {
        for (seq, batch) in [(2048u64, 128u64), (16_384, 32)] {
            let workload = Workload::training(batch, seq);
            let ctx = pool.context(&model, &workload);
            let candidates = ctx.candidates().to_vec();
            // One batched pass: recompute escalation and memory verdicts
            // are handled inside the shared costing pipeline.
            let costed = ctx.cost_candidates(&candidates, MappingEngine::Tcme);
            let mut best: Option<(HybridConfig, f64)> = None;
            let mut best_no_tatp: f64 = 0.0;
            for (cfg, (t, payload)) in candidates.iter().zip(&costed) {
                if !t.is_finite() {
                    continue;
                }
                let Some((_, report)) = payload else { continue };
                let tput = report.throughput;
                if cfg.tatp == 1 {
                    best_no_tatp = best_no_tatp.max(tput);
                }
                if best.as_ref().map(|(_, t)| tput > *t).unwrap_or(true) {
                    best = Some((*cfg, tput));
                }
            }
            match best {
                Some((cfg, tput)) => {
                    let gain = if best_no_tatp > 0.0 {
                        format!("{:.2}x", tput / best_no_tatp)
                    } else {
                        "only TATP fits".to_string()
                    };
                    println!(
                        "{:<16} {:>6} {:>14} {:>12} {:>18}",
                        model.name,
                        seq,
                        cfg.label(),
                        cfg.tatp,
                        gain
                    );
                }
                None => println!("{:<16} {:>6} (nothing fits)", model.name, seq),
            }
        }
    }
    println!(
        "({} pooled contexts share one wafer-level enumeration)",
        pool.len()
    );
    println!("(paper: optimal TATP degree is consistently 8 or 16; gains 2.06-2.29x)");
}
