//! §VIII-H: DLS search time vs the exact (ILP-style) baseline, plus the
//! search-pipeline regression benchmark: serial vs scoped-thread vs
//! work-stealing-pool candidate costing, the two-tier surrogate gate vs
//! exhaustive exact costing, the candidate-cache hit rate of the
//! seven-system sweep, and the persisted-cache warm start over the fig13
//! zoo.
//!
//! Machine-readable results are emitted as single-line JSON records
//! (prefix `{"bench":"search_time",...}`) for the bench trajectory.
//! With `--json <path>` the binary additionally writes one consolidated
//! `BENCH_search.json` record so the perf trajectory is machine-tracked
//! across PRs. With `--check <path>` the fresh gated eval counts are
//! diffed against a committed baseline record (>20% regression fails),
//! the warm start must replay with ≤10% of the cold evaluations, and on
//! a ≥4-core runner the pool must beat serial costing by >1.5x — the CI
//! bench-regression gates. With `--warm-smoke --cache-dir <dir>` the
//! binary instead runs one leg of the cross-process warm-start smoke:
//! the first invocation solves the zoo cold and persists its caches, the
//! second re-solves warm and fails unless evaluations dropped ≥90% with
//! identical plans.

use std::path::Path;
use std::time::Instant;

use temp_bench::header;
use temp_core::framework::Temp;
use temp_graph::models::ModelZoo;
use temp_graph::workload::Workload;
use temp_mapping::engines::MappingEngine;
use temp_solver::cost::WaferCostModel;
use temp_solver::dlws::Dlws;
use temp_solver::dp::solve_chain;
use temp_solver::ilp::solve_exact;
use temp_solver::par::{available_workers, par_map_scoped};
use temp_solver::pool::ContextPool;
use temp_solver::search::SearchContext;
use temp_wsc::config::WaferConfig;

fn context() -> SearchContext {
    let model = ModelZoo::gpt3_6_7b();
    let workload = Workload::for_model(&model);
    SearchContext::new(WaferCostModel::new(WaferConfig::hpca(), model, workload))
}

fn fresh_solver() -> Dlws {
    let model = ModelZoo::gpt3_6_7b();
    Dlws::new(
        WaferConfig::hpca(),
        model.clone(),
        Workload::for_model(&model),
    )
}

/// Pulls an integer field out of a one-record bench JSON line without a
/// JSON parser (the vendored serde stand-in cannot deserialize).
/// Tolerates whitespace after the colon so a pretty-printed or
/// hand-edited baseline still parses.
fn json_u64_field(record: &str, field: &str) -> Option<u64> {
    let needle = format!("\"{field}\"");
    let after_key = record.find(&needle)? + needle.len();
    let rest = record[after_key..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

/// Pulls a float field out of a one-record bench JSON line (same
/// tolerance for whitespace as [`json_u64_field`]).
fn json_f64_field(record: &str, field: &str) -> Option<f64> {
    let needle = format!("\"{field}\"");
    let after_key = record.find(&needle)? + needle.len();
    let rest = record[after_key..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    let digits: String = rest
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
        .collect();
    digits.parse().ok()
}

/// Per-model instrumentation captured during a zoo solve: wall time,
/// mean exact-evaluation latency, and the contention warm/cached-serve
/// hit rate observed while that model solved.
struct ZooModelStats {
    name: String,
    solve_wall_s: f64,
    eval_ns_mean: f64,
    contention_warm_hit_rate: f64,
}

/// Solves the fig13 zoo on one pool with the bound pruner toggled,
/// returning per-model plan fingerprints, the total exact-evaluation
/// count, and per-model solve instrumentation.
fn solve_zoo_with(pool: &ContextPool, pruning: bool) -> (Vec<String>, u64, Vec<ZooModelStats>) {
    let mut plans = Vec::new();
    let mut evals = 0u64;
    let mut per_model = Vec::new();
    for model in ModelZoo::table2() {
        let workload = Workload::for_model(&model);
        let ctx = pool.context(&model, &workload);
        ctx.set_pruning(pruning);
        let before = ctx.stats();
        let (warm_h0, warm_m0) = temp_sim::network::contention_warm_stats();
        let t0 = Instant::now();
        let plan = pool
            .solver(&model, &workload)
            .solve()
            .expect("zoo model must solve");
        let solve_wall_s = t0.elapsed().as_secs_f64();
        let (warm_h1, warm_m1) = temp_sim::network::contention_warm_stats();
        let after = ctx.stats();
        evals += after.misses;
        let d_misses = after.misses.saturating_sub(before.misses);
        let d_exact_ns = after.exact_ns.saturating_sub(before.exact_ns);
        let warm_hits = warm_h1.saturating_sub(warm_h0);
        let warm_total = warm_hits + warm_m1.saturating_sub(warm_m0);
        per_model.push(ZooModelStats {
            name: model.name.clone(),
            solve_wall_s,
            eval_ns_mean: d_exact_ns as f64 / d_misses.max(1) as f64,
            contention_warm_hit_rate: if warm_total == 0 {
                0.0
            } else {
                warm_hits as f64 / warm_total as f64
            },
        });
        // `{:?}` renders the step time bit-exactly, so matching
        // fingerprints mean matching plans, not just matching labels.
        plans.push(format!(
            "{} {} {:?}",
            model.name,
            plan.config.label(),
            plan.report.step_time
        ));
    }
    (plans, evals, per_model)
}

/// Production path: the zoo solve with the admissible bound pruner on.
fn solve_zoo(pool: &ContextPool) -> (Vec<String>, u64, Vec<ZooModelStats>) {
    solve_zoo_with(pool, true)
}

/// Strips the bit-exact step time off a zoo fingerprint, leaving
/// `model label`. Fingerprints from *independent* contexts agree only up
/// to float association (HashMap-ordered sums), so cross-pool winner
/// comparison matches on the configuration, not the rendered float.
fn winner_of(fingerprint: &str) -> &str {
    fingerprint
        .rsplit_once(' ')
        .map(|(head, _)| head)
        .unwrap_or(fingerprint)
}

/// One leg of the cross-process warm-start smoke (`--warm-smoke`): cold
/// legs solve and persist, warm legs (a `meta.txt` already exists) load
/// the persisted caches and must replay the identical plans with ≤10% of
/// the cold leg's evaluations. Returns the process exit code.
fn warm_smoke(dir: &Path) -> i32 {
    let meta_path = dir.join("meta.txt");
    let pool = ContextPool::new(WaferConfig::hpca());
    match std::fs::read_to_string(&meta_path) {
        Ok(meta) => {
            let mut lines = meta.lines();
            let cold_evals: u64 = lines
                .next()
                .and_then(|l| l.strip_prefix("cold_evals "))
                .and_then(|v| v.parse().ok())
                .expect("malformed meta.txt");
            let cold_plans: Vec<&str> = lines.collect();
            pool.load_from(dir).expect("load persisted caches");
            let (plans, warm_evals, _) = solve_zoo(&pool);
            println!(
                "warm leg: {warm_evals} evals vs {cold_evals} cold ({:.1}% of cold)",
                100.0 * warm_evals as f64 / cold_evals.max(1) as f64
            );
            if plans != cold_plans {
                eprintln!("FAIL: warm-start plans differ from the cold leg's");
                for (c, w) in cold_plans.iter().zip(&plans) {
                    if c != w {
                        eprintln!("  cold: {c}\n  warm: {w}");
                    }
                }
                return 1;
            }
            if warm_evals * 10 > cold_evals {
                eprintln!(
                    "FAIL: warm start needed {warm_evals} evals, more than 10% of the \
                     {cold_evals} cold evals"
                );
                return 1;
            }
            println!("warm-start smoke passed: identical plans, ≥90% fewer evaluations");
            0
        }
        Err(_) => {
            let (plans, cold_evals, _) = solve_zoo(&pool);
            pool.save_to(dir).expect("persist caches");
            let mut meta = format!("cold_evals {cold_evals}\n");
            for plan in &plans {
                meta.push_str(plan);
                meta.push('\n');
            }
            std::fs::write(&meta_path, meta).expect("write meta.txt");
            println!(
                "cold leg: {cold_evals} evals over {} models, caches saved to {}",
                plans.len(),
                dir.display()
            );
            0
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--warm-smoke") {
        let dir = args
            .iter()
            .position(|a| a == "--cache-dir")
            .and_then(|i| args.get(i + 1))
            .expect("--warm-smoke requires --cache-dir <dir>");
        std::process::exit(warm_smoke(Path::new(dir)));
    }
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    // The carried pruned-zoo baseline anchors the batched-costing gate
    // to the pre-batching engine: re-baselining (--json rewrites)
    // preserves `pruned_zoo_baseline_s` once it exists, falling back to
    // the old record's own `pruned_zoo_s` on the first transition. Read
    // it up front — --json may overwrite the file later in the run.
    let carried_pruned_zoo_baseline_s = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1))
        .into_iter()
        .chain(json_path.as_ref())
        .find_map(|path| {
            let record = std::fs::read_to_string(path).ok()?;
            json_f64_field(&record, "pruned_zoo_baseline_s")
                .or_else(|| json_f64_field(&record, "pruned_zoo_s"))
        });
    // Read the regression baseline up front: --json may overwrite the
    // same file later in the run.
    let check_baseline = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1))
        .map(|path| {
            let record = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("read bench baseline {path}: {e}"));
            let evals = json_u64_field(&record, "gated_evals")
                .unwrap_or_else(|| panic!("no gated_evals field in {path}"));
            let mw_evals = json_u64_field(&record, "multiwafer_gated_evals")
                .unwrap_or_else(|| panic!("no multiwafer_gated_evals field in {path}"));
            let moe_evals = json_u64_field(&record, "moe_gated_evals")
                .unwrap_or_else(|| panic!("no moe_gated_evals field in {path}"));
            let pruned_candidates = json_u64_field(&record, "pruned_candidates")
                .unwrap_or_else(|| panic!("no pruned_candidates field in {path}"));
            let campaign_s = json_f64_field(&record, "campaign_s")
                .unwrap_or_else(|| panic!("no campaign_s field in {path}"));
            (
                path.clone(),
                evals,
                mw_evals,
                moe_evals,
                pruned_candidates,
                campaign_s,
            )
        });

    header("§VIII-H: end-to-end DLS solve time (GPT-3 6.7B, 32 dies)");
    let solver = fresh_solver();
    let t0 = Instant::now();
    let plan = solver.solve().expect("feasible");
    let dls_total = t0.elapsed().as_secs_f64();
    println!(
        "DLS total: {dls_total:.2} s -> plan {} (paper: ~3 minutes incl. simulation)",
        plan.config.label()
    );
    // A second solve is answered from the candidate cache.
    let t0 = Instant::now();
    let _ = solver.solve().expect("feasible");
    let dls_cached = t0.elapsed().as_secs_f64();
    let stats = solver.search_stats();
    println!(
        "DLS re-solve (cached): {dls_cached:.4} s ({:.0}x faster; cache {} hits / {} misses)",
        dls_total / dls_cached.max(1e-9),
        stats.hits,
        stats.misses
    );
    let (enum_s, bound_s, exact_s, gate_fit_s, contention_s) = stats.phase_seconds();
    println!(
        "phases: enumerate {enum_s:.4} s, bound {bound_s:.4} s, exact {exact_s:.4} s, \
         gate-fit {gate_fit_s:.4} s, contention {contention_s:.4} s \
         ({} bound-pruned + {} dominated)",
        stats.bound_pruned, stats.dominated_pruned
    );
    println!(
        "{{\"bench\":\"search_time\",\"metric\":\"solve\",\"cold_s\":{dls_total:.6},\"cached_s\":{dls_cached:.6},\"bound_s\":{bound_s:.6},\"exact_s\":{exact_s:.6},\"pruned\":{},\"plan\":\"{}\"}}",
        stats.pruned_candidates(),
        plan.config.label()
    );

    header("search pipeline: serial vs scoped-thread vs work-stealing-pool costing");
    let threads = available_workers();
    // What the work-stealing runtime actually brought up — the figure CI
    // legs pin via TEMP_THREADS and the one every parallel claim is
    // conditioned on.
    let threads_effective = temp_solver::runtime::global().workers();
    println!("threads: {threads} requested, {threads_effective} effective in the runtime");
    let serial_ctx = context();
    serial_ctx.set_parallel(false);
    let candidates = serial_ctx.candidates().to_vec();
    let t0 = Instant::now();
    let _ = serial_ctx.cost_candidates(&candidates, MappingEngine::Tcme);
    let serial_s = t0.elapsed().as_secs_f64();

    // Scoped-thread baseline: the seed's spawn-per-call strategy, kept
    // so the pool's win over it is measured, not assumed.
    let scoped_ctx = context();
    let t0 = Instant::now();
    let _ = par_map_scoped(threads, &candidates, |c| {
        scoped_ctx.cost_of(c, MappingEngine::Tcme)
    });
    let scoped_s = t0.elapsed().as_secs_f64();

    // Pool path: what `cost_candidates` actually runs in production —
    // the persistent work-stealing runtime behind `par_map`.
    let pool_ctx = context();
    let t0 = Instant::now();
    let _ = pool_ctx.cost_candidates(&candidates, MappingEngine::Tcme);
    let pool_s = t0.elapsed().as_secs_f64();

    let speedup = serial_s / scoped_s.max(1e-9);
    let pool_speedup = serial_s / pool_s.max(1e-9);
    println!(
        "{} candidates, {threads} worker thread(s): serial {serial_s:.3} s, scoped {scoped_s:.3} s ({speedup:.2}x), pool {pool_s:.3} s ({pool_speedup:.2}x)",
        candidates.len()
    );
    if threads == 1 {
        println!("(single core: both parallel paths degrade to the serial loop by design)");
    }
    println!(
        "{{\"bench\":\"search_time\",\"metric\":\"costing\",\"candidates\":{},\"threads\":{threads},\"serial_s\":{serial_s:.6},\"scoped_s\":{scoped_s:.6},\"pool_s\":{pool_s:.6},\"speedup\":{speedup:.4},\"pool_speedup\":{pool_speedup:.4}}}",
        candidates.len()
    );

    header("two-tier search: surrogate gate vs exhaustive exact costing");
    // Cold full-sweep solves on fresh contexts: the exact path costs every
    // candidate, the gated path exact-costs only the stride-sampled
    // training set plus the surrogate's top-K survivors.
    let exact_solver = fresh_solver();
    let t0 = Instant::now();
    let exact_plan = exact_solver.solve().expect("feasible");
    let exact_cold_s = t0.elapsed().as_secs_f64();
    let exact_stats = exact_solver.search_stats();

    let gated_solver = fresh_solver().with_surrogate_gate();
    let t0 = Instant::now();
    let gated_plan = gated_solver.solve().expect("feasible");
    let gated_cold_s = t0.elapsed().as_secs_f64();
    let gated_stats = gated_solver.search_stats();

    let gated_speedup = exact_cold_s / gated_cold_s.max(1e-9);
    let plans_match = exact_plan == gated_plan;
    println!(
        "exact cold solve {exact_cold_s:.3} s ({} evals) -> {} (chain cost {:.4} s{})",
        exact_stats.misses,
        exact_plan.config.label(),
        exact_plan.chain_cost,
        if exact_plan.is_heterogeneous() {
            ", heterogeneous chain"
        } else {
            ""
        }
    );
    println!(
        "gated cold solve {gated_cold_s:.3} s ({} evals, {} pruned, adaptive K {}) -> {} ({gated_speedup:.2}x, plans match: {plans_match})",
        gated_stats.misses,
        gated_stats.gate_pruned,
        gated_stats.adaptive_top_k,
        gated_plan.config.label()
    );
    println!(
        "{{\"bench\":\"search_time\",\"metric\":\"surrogate_gate\",\"exact_cold_s\":{exact_cold_s:.6},\"gated_cold_s\":{gated_cold_s:.6},\"speedup\":{gated_speedup:.4},\"gate_pruned\":{},\"adaptive_top_k\":{},\"plans_match\":{plans_match}}}",
        gated_stats.gate_pruned, gated_stats.adaptive_top_k
    );

    header("multi-wafer sweep: per-degree gated batch mode vs exact");
    // Fresh frameworks so both sweeps cost from cold caches. The gated
    // sweep runs the surrogate gate once per pipeline degree (per-degree
    // batch mode: each degree ranked and shortlisted on its own, so the
    // winner-retention guarantee holds per solve).
    use temp_core::baselines::BaselineSystem;
    let sweep_wafers = [2usize, 4];
    let sweep_multipliers = [1usize];
    let exact_temp = Temp::hpca(ModelZoo::gpt3_6_7b());
    let t0 = Instant::now();
    let exact_entries = exact_temp.evaluate_multiwafer_sweep(
        &BaselineSystem::temp(),
        &sweep_wafers,
        &sweep_multipliers,
    );
    let exact_sweep_s = t0.elapsed().as_secs_f64();
    let exact_sweep_evals = exact_temp.search_stats().misses;

    let gated_temp = Temp::hpca(ModelZoo::gpt3_6_7b()).with_surrogate_gate();
    let t0 = Instant::now();
    let gated_entries = gated_temp.evaluate_multiwafer_sweep(
        &BaselineSystem::temp(),
        &sweep_wafers,
        &sweep_multipliers,
    );
    let gated_sweep_s = t0.elapsed().as_secs_f64();
    let mw_gated_stats = gated_temp.search_stats();
    let mw_gated_evals = mw_gated_stats.misses;

    // Winner retention across the sweep: every point's body strategy and
    // stage cuts must match the exact sweep's (bit-exact equality needs a
    // shared context; tests/two_tier.rs asserts that form).
    let mw_plans_match = exact_entries.len() == gated_entries.len()
        && exact_entries.iter().zip(&gated_entries).all(|(e, g)| {
            e.report
                .plan
                .as_ref()
                .map(|p| (p.body.config, p.blocks_per_stage()))
                == g.report
                    .plan
                    .as_ref()
                    .map(|p| (p.body.config, p.blocks_per_stage()))
        });
    let mw_speedup = exact_sweep_s / gated_sweep_s.max(1e-9);
    println!(
        "exact sweep {exact_sweep_s:.3} s ({exact_sweep_evals} evals) over {} points",
        exact_entries.len()
    );
    println!(
        "gated sweep {gated_sweep_s:.3} s ({mw_gated_evals} evals, {} pruned) -> {mw_speedup:.2}x, plans match: {mw_plans_match}",
        mw_gated_stats.gate_pruned
    );
    println!(
        "{{\"bench\":\"search_time\",\"metric\":\"multiwafer_sweep\",\"exact_s\":{exact_sweep_s:.6},\"gated_s\":{gated_sweep_s:.6},\"exact_evals\":{exact_sweep_evals},\"gated_evals\":{mw_gated_evals},\"plans_match\":{mw_plans_match}}}"
    );

    header("MoE chain: gated vs exact on the fine-grained expert config");
    // A mixed dense/MoE chain (DeepSeek-style, 64 experts): the gate
    // trains on the dense block-only residual and adds the closed-form
    // segment rows, so the expert-parallel winner survives the shortlist.
    let moe_model = ModelZoo::deepseek_moe_16b();
    let moe_ctx = std::sync::Arc::new(SearchContext::new(WaferCostModel::new(
        WaferConfig::hpca(),
        moe_model.clone(),
        Workload::for_model(&moe_model),
    )));
    let moe_solver = Dlws::from_context(moe_ctx.clone());
    moe_ctx.set_cost_tier(temp_solver::search::CostTier::SurrogateGated);
    let t0 = Instant::now();
    let moe_gated_plan = moe_solver.solve().expect("gated MoE plan");
    let moe_gated_s = t0.elapsed().as_secs_f64();
    let moe_gated_evals = moe_ctx.stats().misses;
    moe_ctx.set_cost_tier(temp_solver::search::CostTier::Exact);
    let t0 = Instant::now();
    let moe_exact_plan = moe_solver.solve().expect("exact MoE plan");
    let moe_exact_s = t0.elapsed().as_secs_f64();
    let moe_exact_evals = moe_ctx.stats().misses;
    let moe_plans_match = moe_gated_plan == moe_exact_plan;
    let moe_ep = moe_exact_plan
        .segments
        .iter()
        .find(|s| s.kind == temp_graph::segment::SegmentKind::MoeBlock)
        .map(|s| s.config.ep)
        .unwrap_or(1);
    println!(
        "gated cold solve {moe_gated_s:.3} s ({moe_gated_evals} evals) vs exact warm {moe_exact_s:.3} s ({moe_exact_evals} total) -> MoE run ep={moe_ep}, plans match: {moe_plans_match}"
    );
    println!(
        "{{\"bench\":\"search_time\",\"metric\":\"moe_gate\",\"gated_s\":{moe_gated_s:.6},\"gated_evals\":{moe_gated_evals},\"exact_evals\":{moe_exact_evals},\"moe_ep\":{moe_ep},\"plans_match\":{moe_plans_match}}}"
    );

    header("candidate cache: the seven-system compare_all sweep");
    let temp = Temp::hpca(ModelZoo::gpt3_6_7b());
    let t0 = Instant::now();
    let _ = temp.compare_all();
    let first_sweep_s = t0.elapsed().as_secs_f64();
    let after_first = temp.search_stats();
    let t0 = Instant::now();
    let _ = temp.compare_all();
    let second_sweep_s = t0.elapsed().as_secs_f64();
    let after_second = temp.search_stats();
    println!(
        "first sweep {first_sweep_s:.3} s ({} misses, {} hits, hit rate {:.1}%)",
        after_first.misses,
        after_first.hits,
        100.0 * after_first.hit_rate()
    );
    // Per-sweep deltas: the cumulative counters would dilute the second
    // sweep's hit rate with the first sweep's mandatory misses.
    let second_misses = after_second.misses - after_first.misses;
    let second_hits = after_second.hits - after_first.hits;
    let second_hit_rate = if second_hits + second_misses == 0 {
        0.0
    } else {
        second_hits as f64 / (second_hits + second_misses) as f64
    };
    println!(
        "second sweep {second_sweep_s:.3} s ({second_misses} new misses, hit rate {:.1}%)",
        100.0 * second_hit_rate
    );
    // Per-tier attribution: the 0.10 headline rate is the cold pass
    // diluting the ratio — the exact tier itself, and the warm replay
    // above all, sit far higher.
    println!(
        "per-tier: exact {}/{} ({:.1}%), gated {}/{} ({:.1}%), segment-table hits {}",
        after_second.exact_hits,
        after_second.exact_hits + after_second.exact_misses,
        100.0 * after_second.exact_hit_rate(),
        after_second.gated_hits,
        after_second.gated_hits + after_second.gated_misses,
        100.0 * after_second.gated_hit_rate(),
        after_second.seg_hits
    );
    println!(
        "{{\"bench\":\"search_time\",\"metric\":\"cache\",\"first_sweep_s\":{first_sweep_s:.6},\"second_sweep_s\":{second_sweep_s:.6},\"first_sweep_misses\":{},\"first_sweep_hits\":{},\"second_sweep_hit_rate\":{second_hit_rate:.4},\"exact_hit_rate\":{:.4},\"gated_hit_rate\":{:.4},\"seg_hits\":{}}}",
        after_first.misses,
        after_first.hits,
        after_second.exact_hit_rate(),
        after_second.gated_hit_rate(),
        after_second.seg_hits
    );

    header("persisted-cache warm start: fig13 zoo, export -> fresh pool -> import");
    // The in-process equivalent of the `--warm-smoke` CI legs: a cold
    // pool solves the six-model zoo, persists every context's cost
    // table, and a brand-new pool importing those files must replay the
    // identical plans while running almost no exact evaluations.
    let warm_dir = std::env::temp_dir().join(format!("temp-bench-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&warm_dir);
    let cold_pool = ContextPool::new(WaferConfig::hpca());
    let t0 = Instant::now();
    let (cold_fps, cold_evals, _) = solve_zoo(&cold_pool);
    let cold_zoo_s = t0.elapsed().as_secs_f64();
    let saved = cold_pool.save_to(&warm_dir).expect("persist zoo caches");
    let warm_pool = ContextPool::new(WaferConfig::hpca());
    warm_pool.load_from(&warm_dir).expect("import zoo caches");
    let t0 = Instant::now();
    let (warm_fps, warm_evals, _) = solve_zoo(&warm_pool);
    let warm_zoo_s = t0.elapsed().as_secs_f64();
    let warm_plans_match = cold_fps == warm_fps;
    let _ = std::fs::remove_dir_all(&warm_dir);
    println!(
        "cold zoo solve {cold_zoo_s:.3} s ({cold_evals} evals over {} models, {saved} caches saved)",
        cold_fps.len()
    );
    println!(
        "warm zoo solve {warm_zoo_s:.3} s ({warm_evals} evals, {:.1}% of cold), plans match: {warm_plans_match}",
        100.0 * warm_evals as f64 / cold_evals.max(1) as f64
    );
    println!(
        "{{\"bench\":\"search_time\",\"metric\":\"warm_start\",\"cold_s\":{cold_zoo_s:.6},\"warm_s\":{warm_zoo_s:.6},\"cold_evals\":{cold_evals},\"warm_evals\":{warm_evals},\"plans_match\":{warm_plans_match}}}"
    );

    header("bound-pruned search: admissible prefilter vs exhaustive cold zoo solve");
    // Two cold pools over the same six-model zoo: one with the
    // lower-bound pruner disabled (the exhaustive reference), one with it
    // on (the production path). Same winners are required — the bounds
    // are admissible — so the only difference is how many candidates ever
    // reach the exact cost model.
    let exhaustive_pool = ContextPool::new(WaferConfig::hpca());
    let t0 = Instant::now();
    let (exhaustive_fps, exhaustive_evals, _) = solve_zoo_with(&exhaustive_pool, false);
    let exhaustive_zoo_s = t0.elapsed().as_secs_f64();

    let pruned_pool = ContextPool::new(WaferConfig::hpca());
    let t0 = Instant::now();
    let (pruned_fps, pruned_evals, zoo_model_stats) = solve_zoo_with(&pruned_pool, true);
    let pruned_zoo_s = t0.elapsed().as_secs_f64();

    let prune_speedup = exhaustive_zoo_s / pruned_zoo_s.max(1e-9);
    let pruned_winners_match = exhaustive_fps.len() == pruned_fps.len()
        && exhaustive_fps
            .iter()
            .zip(&pruned_fps)
            .all(|(e, p)| winner_of(e) == winner_of(p));
    let mut pruned_candidates = 0u64;
    let mut zoo_bound_s = 0.0f64;
    let mut zoo_exact_s = 0.0f64;
    let (mut coll_hits, mut coll_misses) = (0u64, 0u64);
    for model in ModelZoo::table2() {
        let workload = Workload::for_model(&model);
        let ctx = pruned_pool.context(&model, &workload);
        let s = ctx.stats();
        pruned_candidates += s.pruned_candidates();
        let (_, b, e, _, _) = s.phase_seconds();
        zoo_bound_s += b;
        zoo_exact_s += e;
        let (h, m) = ctx.cost_model().collective_memo_stats();
        coll_hits += h;
        coll_misses += m;
    }
    let coll_hit_rate = coll_hits as f64 / (coll_hits + coll_misses).max(1) as f64;
    // Concurrency counters from the sharded caches: evaluations that
    // parked on another thread's in-flight cost run instead of
    // duplicating it, and lock shards found contended. Single-threaded
    // legs report 0/0 — the counters exist so the multi-thread CI leg
    // tracks residual serialization across PRs.
    let (pool_stats, unique_eval_keys) = pruned_pool.aggregate_stats();
    let coalesced_evals = pool_stats.coalesced;
    let shard_waits = pool_stats.shard_waits;
    println!(
        "exhaustive zoo solve {exhaustive_zoo_s:.3} s ({exhaustive_evals} evals); \
         pruned {pruned_zoo_s:.3} s ({pruned_evals} evals, {pruned_candidates} pruned) \
         -> {prune_speedup:.2}x, winners match: {pruned_winners_match}"
    );
    println!(
        "single-flight: {coalesced_evals} coalesced evals, {shard_waits} shard waits \
         over {unique_eval_keys} unique keys on the pruned pool"
    );
    println!(
        "pruned-leg phases: bound {zoo_bound_s:.4} s vs exact {zoo_exact_s:.4} s; \
         collective kernel {coll_hits} hits / {coll_misses} misses ({:.1}% hit rate)",
        100.0 * coll_hit_rate
    );
    for m in &zoo_model_stats {
        println!(
            "  {}: solve {:.4} s, mean exact eval {:.0} ns, contention warm/cached \
             hit rate {:.1}%",
            m.name,
            m.solve_wall_s,
            m.eval_ns_mean,
            100.0 * m.contention_warm_hit_rate
        );
    }
    println!(
        "{{\"bench\":\"search_time\",\"metric\":\"bound_pruning\",\"exhaustive_s\":{exhaustive_zoo_s:.6},\"pruned_s\":{pruned_zoo_s:.6},\"prune_speedup\":{prune_speedup:.4},\"exhaustive_evals\":{exhaustive_evals},\"pruned_evals\":{pruned_evals},\"pruned_candidates\":{pruned_candidates},\"bound_s\":{zoo_bound_s:.6},\"coll_hit_rate\":{coll_hit_rate:.4},\"winners_match\":{pruned_winners_match}}}"
    );

    header("flat-batched fault campaigns: one (model x kind x rate x seed) grid");
    // A compact fig20-shaped campaign: every lane is one seed's full rate
    // sweep, flat-batched on the work-stealing runtime, with each rate
    // point's incumbent seeded from the previous rate's winner.
    use temp_solver::faultcamp::{run_campaigns, CampaignSpec, FaultKind};
    let campaign_specs = [
        CampaignSpec {
            model: ModelZoo::gpt3_6_7b(),
            kind: FaultKind::Link,
            rates: vec![0.0, 0.1, 0.2],
        },
        CampaignSpec {
            model: ModelZoo::gpt3_6_7b(),
            kind: FaultKind::Core,
            rates: vec![0.0, 0.1, 0.2],
        },
    ];
    let campaign_seeds = 2u64;
    let t0 = Instant::now();
    let curves = run_campaigns(&WaferConfig::hpca(), &campaign_specs, campaign_seeds);
    let campaign_s = t0.elapsed().as_secs_f64();
    let campaign_lanes = campaign_specs.len() as u64 * campaign_seeds;
    for curve in &curves {
        println!(
            "  {} {:?}: head {:.3} -> tail {:.3} over {} rates",
            curve.model,
            curve.kind,
            curve.head(),
            curve.tail(),
            curve.points.len()
        );
    }
    println!(
        "campaign: {campaign_lanes} lanes x {} rates in {campaign_s:.3} s on {threads_effective} worker(s)",
        campaign_specs[0].rates.len()
    );
    println!(
        "{{\"bench\":\"search_time\",\"metric\":\"campaign\",\"campaign_s\":{campaign_s:.6},\"lanes\":{campaign_lanes},\"seeds\":{campaign_seeds},\"threads_effective\":{threads_effective}}}"
    );

    header("chain assignment: DP (DLS level 1) vs exact branch-and-bound (ILP stand-in)");
    println!(
        "{:>9} {:>12} {:>14} {:>10}",
        "segments", "DP time s", "exact time s", "speedup"
    );
    // Anti-pruning cost structure so the exact solver does real work.
    let k = 6usize;
    for segments in [4usize, 6, 8, 10, 12] {
        let costs: Vec<Vec<f64>> = (0..segments)
            .map(|s| {
                (0..k)
                    .map(|c| 3.0 - 0.4 * c as f64 + 0.01 * s as f64)
                    .collect()
            })
            .collect();
        let tr = |_s: usize, a: usize, b: usize| if a == b { 0.0 } else { 0.05 };
        let t0 = Instant::now();
        for _ in 0..100 {
            let _ = solve_chain(&costs, tr).expect("well-formed chain");
        }
        let dp_t = t0.elapsed().as_secs_f64() / 100.0;
        let t0 = Instant::now();
        let exact = solve_exact(&costs, tr);
        let ex_t = t0.elapsed().as_secs_f64();
        println!(
            "{segments:>9} {dp_t:>12.6} {ex_t:>14.6} {:>9.0}x  ({} nodes)",
            ex_t / dp_t.max(1e-9),
            exact.nodes_expanded
        );
    }
    println!("(exact search grows as k^segments; a 96-layer model is out of reach, matching the paper's 40-1000+ hour ILP times — DLS stays polynomial: >200x speedups appear within the rows above)");

    if let Some(path) = json_path {
        // One consolidated record per run so the perf trajectory is
        // machine-tracked across PRs (vendored serde is a no-op stub, so
        // the record is assembled by hand).
        let record = format!(
            concat!(
                "{{\"bench\":\"search_time\",\"model\":\"GPT-3 6.7B\",\"threads\":{},",
                "\"threads_effective\":{},",
                "\"serial_s\":{:.6},\"scoped_s\":{:.6},\"pool_s\":{:.6},",
                "\"parallel_speedup\":{:.4},\"pool_speedup\":{:.4},",
                "\"exact_cold_s\":{:.6},\"gated_cold_s\":{:.6},\"gated_speedup\":{:.4},",
                "\"gated_evals\":{},\"gate_pruned\":{},\"adaptive_top_k\":{},",
                "\"plans_match\":{},\"multiwafer_gated_evals\":{},",
                "\"multiwafer_exact_evals\":{},\"multiwafer_plans_match\":{},",
                "\"moe_gated_evals\":{},\"moe_exact_evals\":{},\"moe_plans_match\":{},",
                "\"sweep_cache_hit_rate\":{:.4},\"sweep_exact_hit_rate\":{:.4},",
                "\"sweep_gated_hit_rate\":{:.4},\"sweep_seg_hits\":{},",
                "\"cold_evals\":{},\"warm_evals\":{},\"warm_plans_match\":{},",
                "\"exhaustive_zoo_s\":{:.6},\"pruned_zoo_s\":{:.6},",
                "\"prune_speedup\":{:.4},\"exhaustive_evals\":{},\"pruned_evals\":{},",
                "\"pruned_candidates\":{},\"bound_time_s\":{:.6},",
                "\"coll_hit_rate\":{:.4},\"pruned_winners_match\":{},",
                "\"campaign_s\":{:.6},\"campaign_lanes\":{},",
                "\"coalesced_evals\":{},\"shard_waits\":{},\"unique_eval_keys\":{},",
                "\"pruned_zoo_baseline_s\":{:.6},\"zoo_models\":[{}]}}\n"
            ),
            threads,
            threads_effective,
            serial_s,
            scoped_s,
            pool_s,
            speedup,
            pool_speedup,
            exact_cold_s,
            gated_cold_s,
            gated_speedup,
            gated_stats.misses,
            gated_stats.gate_pruned,
            gated_stats.adaptive_top_k,
            plans_match,
            mw_gated_evals,
            exact_sweep_evals,
            mw_plans_match,
            moe_gated_evals,
            moe_exact_evals,
            moe_plans_match,
            after_first.hit_rate(),
            after_second.exact_hit_rate(),
            after_second.gated_hit_rate(),
            after_second.seg_hits,
            cold_evals,
            warm_evals,
            warm_plans_match,
            exhaustive_zoo_s,
            pruned_zoo_s,
            prune_speedup,
            exhaustive_evals,
            pruned_evals,
            pruned_candidates,
            zoo_bound_s,
            coll_hit_rate,
            pruned_winners_match,
            campaign_s,
            campaign_lanes,
            coalesced_evals,
            shard_waits,
            unique_eval_keys,
            carried_pruned_zoo_baseline_s.unwrap_or(pruned_zoo_s),
            zoo_model_stats
                .iter()
                .map(|m| format!(
                    "{{\"name\":\"{}\",\"solve_wall_s\":{:.6},\"eval_ns_mean\":{:.1},\"contention_warm_hit_rate\":{:.4}}}",
                    m.name, m.solve_wall_s, m.eval_ns_mean, m.contention_warm_hit_rate
                ))
                .collect::<Vec<_>>()
                .join(","),
        );
        std::fs::write(&path, &record).expect("write bench JSON");
        println!("\nwrote {path}");
    }

    if let Some((
        path,
        baseline_evals,
        baseline_mw_evals,
        baseline_moe_evals,
        baseline_pruned_candidates,
        baseline_campaign_s,
    )) = check_baseline
    {
        // Bench-regression gate: fail when the gated search — single
        // wafer, the multi-wafer sweep, or the MoE chain — needs >20%
        // more exact evaluations than the committed baseline record.
        let mut failed = false;
        for (what, fresh, baseline) in [
            ("gated_evals", gated_stats.misses, baseline_evals),
            ("multiwafer_gated_evals", mw_gated_evals, baseline_mw_evals),
            ("moe_gated_evals", moe_gated_evals, baseline_moe_evals),
        ] {
            let limit = (baseline as f64 * 1.2).ceil() as u64;
            println!(
                "{what} regression check vs {path}: fresh {fresh} vs baseline {baseline} (limit {limit})"
            );
            if fresh > limit {
                eprintln!(
                    "FAIL: {what} regressed >20% ({fresh} > {limit}); \
                     re-baseline BENCH_search.json only if the regression is intended"
                );
                failed = true;
            }
        }
        // Warm-start gate: persisted caches must cut the zoo re-solve to
        // ≤10% of the cold evaluations and replay identical plans.
        println!(
            "warm-start check: {warm_evals} warm vs {cold_evals} cold evals, plans match: {warm_plans_match}"
        );
        if warm_evals * 10 > cold_evals || !warm_plans_match {
            eprintln!("FAIL: warm start must replay identical plans with ≤10% of the cold evals");
            failed = true;
        }

        // Pool gate: on a real multi-core runner the persistent pool must
        // beat serial costing by >1.5x. A 1-thread leg of the CI matrix
        // (or this container's single core) cannot show a speedup, so the
        // gate only arms at 4+ workers.
        if threads >= 4 {
            println!("pool-speedup check: {pool_speedup:.2}x at {threads} threads (limit >1.50x)");
            if pool_speedup <= 1.5 {
                eprintln!("FAIL: pool speedup {pool_speedup:.2}x <= 1.5x at {threads} threads");
                failed = true;
            }
        } else {
            println!(
                "pool-speedup check skipped ({threads} thread(s) < 4: no parallelism to measure)"
            );
        }

        // Pruning gates. The speedup gate is in-run (exhaustive vs pruned
        // on this very machine, so it is machine-independent); the
        // pruned-candidate count guards the bound quality itself — if the
        // bounds loosen, fewer candidates are pruned and the count drops
        // below 80% of the committed baseline.
        println!(
            "prune-speedup check: {prune_speedup:.2}x (limit >=2.00x), winners match: {pruned_winners_match}"
        );
        if prune_speedup < 2.0 || !pruned_winners_match {
            eprintln!(
                "FAIL: bound pruning must keep a >=2x cold zoo speedup with unchanged winners"
            );
            failed = true;
        }
        // Batched-costing gate: the SoA engine (hoisted op-graph walk,
        // mapping memo, allocation-free hot paths) must keep the cold
        // pruned zoo solve >=2x faster than the carried pre-batching
        // baseline, with the winners still matching the exhaustive leg.
        match carried_pruned_zoo_baseline_s {
            Some(baseline_s) => {
                let limit = baseline_s / 2.0;
                println!(
                    "batched-costing check vs {path}: fresh pruned_zoo_s {pruned_zoo_s:.6} s \
                     vs carried baseline {baseline_s:.6} s (limit {limit:.6} s), \
                     winners match: {pruned_winners_match}"
                );
                if pruned_zoo_s > limit || !pruned_winners_match {
                    eprintln!(
                        "FAIL: batched costing must keep pruned_zoo_s at or under half the \
                         carried {baseline_s:.6} s baseline with unchanged winners"
                    );
                    failed = true;
                }
            }
            None => println!(
                "batched-costing check skipped: no pruned_zoo_baseline_s or pruned_zoo_s \
                 in {path}"
            ),
        }
        let pruned_floor = (baseline_pruned_candidates as f64 * 0.8).floor() as u64;
        println!(
            "pruned-candidates check vs {path}: fresh {pruned_candidates} vs baseline \
             {baseline_pruned_candidates} (floor {pruned_floor})"
        );
        if pruned_candidates < pruned_floor {
            eprintln!(
                "FAIL: pruned_candidates dropped >20% ({pruned_candidates} < {pruned_floor}); \
                 the lower bounds have loosened"
            );
            failed = true;
        }
        // Campaign wall-time gate: generous (3x the committed baseline)
        // because CI runners vary, but a scheduling regression that
        // serializes the lanes blows well past it.
        let campaign_limit = baseline_campaign_s * 3.0;
        println!(
            "campaign wall-time check vs {path}: fresh {campaign_s:.3} s vs baseline \
             {baseline_campaign_s:.3} s (limit {campaign_limit:.3} s)"
        );
        if campaign_s > campaign_limit {
            eprintln!(
                "FAIL: flat-batched campaign took {campaign_s:.3} s, over 3x the committed \
                 {baseline_campaign_s:.3} s baseline"
            );
            failed = true;
        }

        if failed {
            std::process::exit(1);
        }
        println!("bench regression checks passed");
    }
}
