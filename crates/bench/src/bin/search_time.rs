//! §VIII-H: DLS search time vs the exact (ILP-style) baseline, plus the
//! search-pipeline regression benchmark: serial vs parallel candidate
//! costing and the candidate-cache hit rate of the seven-system sweep.
//!
//! Machine-readable results are emitted as single-line JSON records
//! (prefix `{"bench":"search_time",...}`) for the bench trajectory.

use std::time::Instant;

use temp_bench::header;
use temp_core::framework::Temp;
use temp_graph::models::ModelZoo;
use temp_graph::workload::Workload;
use temp_mapping::engines::MappingEngine;
use temp_solver::cost::WaferCostModel;
use temp_solver::dlws::Dlws;
use temp_solver::dp::solve_chain;
use temp_solver::ilp::solve_exact;
use temp_solver::par::available_workers;
use temp_solver::search::SearchContext;
use temp_wsc::config::WaferConfig;

fn context() -> SearchContext {
    let model = ModelZoo::gpt3_6_7b();
    let workload = Workload::for_model(&model);
    SearchContext::new(WaferCostModel::new(WaferConfig::hpca(), model, workload))
}

fn main() {
    header("§VIII-H: end-to-end DLS solve time (GPT-3 6.7B, 32 dies)");
    let model = ModelZoo::gpt3_6_7b();
    let solver = Dlws::new(
        WaferConfig::hpca(),
        model.clone(),
        Workload::for_model(&model),
    );
    let t0 = Instant::now();
    let plan = solver.solve().expect("feasible");
    let dls_total = t0.elapsed().as_secs_f64();
    println!(
        "DLS total: {dls_total:.2} s -> plan {} (paper: ~3 minutes incl. simulation)",
        plan.config.label()
    );
    // A second solve is answered from the candidate cache.
    let t0 = Instant::now();
    let _ = solver.solve().expect("feasible");
    let dls_cached = t0.elapsed().as_secs_f64();
    let stats = solver.search_stats();
    println!(
        "DLS re-solve (cached): {dls_cached:.4} s ({:.0}x faster; cache {} hits / {} misses)",
        dls_total / dls_cached.max(1e-9),
        stats.hits,
        stats.misses
    );
    println!(
        "{{\"bench\":\"search_time\",\"metric\":\"solve\",\"cold_s\":{dls_total:.6},\"cached_s\":{dls_cached:.6},\"plan\":\"{}\"}}",
        plan.config.label()
    );

    header("search pipeline: serial vs parallel candidate costing");
    let threads = available_workers();
    let serial_ctx = context();
    serial_ctx.set_parallel(false);
    let candidates = serial_ctx.candidates().to_vec();
    let t0 = Instant::now();
    let _ = serial_ctx.cost_candidates(&candidates, MappingEngine::Tcme);
    let serial_s = t0.elapsed().as_secs_f64();

    let parallel_ctx = context();
    let t0 = Instant::now();
    let _ = parallel_ctx.cost_candidates(&candidates, MappingEngine::Tcme);
    let parallel_s = t0.elapsed().as_secs_f64();

    let speedup = serial_s / parallel_s.max(1e-9);
    println!(
        "{} candidates, {threads} worker thread(s): serial {serial_s:.3} s, parallel {parallel_s:.3} s ({speedup:.2}x)",
        candidates.len()
    );
    if threads == 1 {
        println!("(single core: the parallel path degrades to the serial loop by design)");
    }
    println!(
        "{{\"bench\":\"search_time\",\"metric\":\"costing\",\"candidates\":{},\"threads\":{threads},\"serial_s\":{serial_s:.6},\"parallel_s\":{parallel_s:.6},\"speedup\":{speedup:.4}}}",
        candidates.len()
    );

    header("candidate cache: the seven-system compare_all sweep");
    let temp = Temp::hpca(ModelZoo::gpt3_6_7b());
    let t0 = Instant::now();
    let _ = temp.compare_all();
    let first_sweep_s = t0.elapsed().as_secs_f64();
    let after_first = temp.search_stats();
    let t0 = Instant::now();
    let _ = temp.compare_all();
    let second_sweep_s = t0.elapsed().as_secs_f64();
    let after_second = temp.search_stats();
    println!(
        "first sweep {first_sweep_s:.3} s ({} misses, {} hits, hit rate {:.1}%)",
        after_first.misses,
        after_first.hits,
        100.0 * after_first.hit_rate()
    );
    // Per-sweep deltas: the cumulative counters would dilute the second
    // sweep's hit rate with the first sweep's mandatory misses.
    let second_misses = after_second.misses - after_first.misses;
    let second_hits = after_second.hits - after_first.hits;
    let second_hit_rate = if second_hits + second_misses == 0 {
        0.0
    } else {
        second_hits as f64 / (second_hits + second_misses) as f64
    };
    println!(
        "second sweep {second_sweep_s:.3} s ({second_misses} new misses, hit rate {:.1}%)",
        100.0 * second_hit_rate
    );
    println!(
        "{{\"bench\":\"search_time\",\"metric\":\"cache\",\"first_sweep_s\":{first_sweep_s:.6},\"second_sweep_s\":{second_sweep_s:.6},\"first_sweep_misses\":{},\"first_sweep_hits\":{},\"second_sweep_hit_rate\":{second_hit_rate:.4}}}",
        after_first.misses, after_first.hits
    );

    header("chain assignment: DP (DLS level 1) vs exact branch-and-bound (ILP stand-in)");
    println!(
        "{:>9} {:>12} {:>14} {:>10}",
        "segments", "DP time s", "exact time s", "speedup"
    );
    // Anti-pruning cost structure so the exact solver does real work.
    let k = 6usize;
    for segments in [4usize, 6, 8, 10, 12] {
        let costs: Vec<Vec<f64>> = (0..segments)
            .map(|s| {
                (0..k)
                    .map(|c| 3.0 - 0.4 * c as f64 + 0.01 * s as f64)
                    .collect()
            })
            .collect();
        let tr = |a: usize, b: usize| if a == b { 0.0 } else { 0.05 };
        let t0 = Instant::now();
        for _ in 0..100 {
            let _ = solve_chain(&costs, tr);
        }
        let dp_t = t0.elapsed().as_secs_f64() / 100.0;
        let t0 = Instant::now();
        let exact = solve_exact(&costs, tr);
        let ex_t = t0.elapsed().as_secs_f64();
        println!(
            "{segments:>9} {dp_t:>12.6} {ex_t:>14.6} {:>9.0}x  ({} nodes)",
            ex_t / dp_t.max(1e-9),
            exact.nodes_expanded
        );
    }
    println!("(exact search grows as k^segments; a 96-layer model is out of reach, matching the paper's 40-1000+ hour ILP times — DLS stays polynomial: >200x speedups appear within the rows above)");
}
