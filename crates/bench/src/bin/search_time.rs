//! §VIII-H: DLS search time vs the exact (ILP-style) baseline.

use std::time::Instant;

use temp_bench::header;
use temp_graph::models::ModelZoo;
use temp_graph::workload::Workload;
use temp_solver::dlws::Dlws;
use temp_solver::dp::solve_chain;
use temp_solver::ilp::solve_exact;
use temp_wsc::config::WaferConfig;

fn main() {
    header("§VIII-H: end-to-end DLS solve time (GPT-3 6.7B, 32 dies)");
    let model = ModelZoo::gpt3_6_7b();
    let solver = Dlws::new(WaferConfig::hpca(), model.clone(), Workload::for_model(&model));
    let t0 = Instant::now();
    let plan = solver.solve().expect("feasible");
    let dls_total = t0.elapsed().as_secs_f64();
    println!("DLS total: {dls_total:.2} s -> plan {} (paper: ~3 minutes incl. simulation)", plan.config.label());

    header("chain assignment: DP (DLS level 1) vs exact branch-and-bound (ILP stand-in)");
    println!("{:>9} {:>12} {:>14} {:>10}", "segments", "DP time s", "exact time s", "speedup");
    // Anti-pruning cost structure so the exact solver does real work.
    let k = 6usize;
    for segments in [4usize, 6, 8, 10, 12] {
        let costs: Vec<Vec<f64>> =
            (0..segments).map(|s| (0..k).map(|c| 3.0 - 0.4 * c as f64 + 0.01 * s as f64).collect()).collect();
        let tr = |a: usize, b: usize| if a == b { 0.0 } else { 0.05 };
        let t0 = Instant::now();
        for _ in 0..100 {
            let _ = solve_chain(&costs, tr);
        }
        let dp_t = t0.elapsed().as_secs_f64() / 100.0;
        let t0 = Instant::now();
        let exact = solve_exact(&costs, tr);
        let ex_t = t0.elapsed().as_secs_f64();
        println!(
            "{segments:>9} {dp_t:>12.6} {ex_t:>14.6} {:>9.0}x  ({} nodes)",
            ex_t / dp_t.max(1e-9),
            exact.nodes_expanded
        );
    }
    println!("(exact search grows as k^segments; a 96-layer model is out of reach, matching the paper's 40-1000+ hour ILP times — DLS stays polynomial: >200x speedups appear within the rows above)");
}
