//! Fig. 19: multi-wafer scaling — TEMP (low PP degree + TATP) vs baselines
//! (high PP degree) on 175B-504B models, planned with the
//! stage-partitioned pipeline: stages are contiguous segment-chain
//! slices, the first wafer owns the embedding and the last the LM head,
//! and inter-wafer handoffs are priced from the boundary activation
//! tensors at the actual cuts.
//!
//! `--smoke` runs only the smallest zoo model on 2 wafers — the CI
//! sanity check that multi-wafer planning stays alive.

use temp_bench::header;
use temp_core::baselines::BaselineSystem;
use temp_core::framework::Temp;
use temp_graph::models::ModelZoo;
use temp_graph::workload::Workload;
use temp_wsc::config::WaferConfig;
use temp_wsc::multiwafer::MultiWaferSystem;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    header("Fig. 19: multi-wafer training (stage-partitioned pipeline)");
    println!(
        "{:<20} {:>7} {:>22} {:>26}",
        "model", "wafers", "best baseline (PP=2W)", "TEMP (PP=W)"
    );
    let cases: Vec<(temp_graph::models::ModelConfig, usize)> = if smoke {
        vec![(ModelZoo::gpt3_6_7b(), 2)]
    } else {
        vec![
            (ModelZoo::gpt3_175b(), 2),
            (ModelZoo::grok1_341b(), 4),
            (ModelZoo::llama3_405b(), 4),
            (ModelZoo::gpt3_504b(), 6),
        ]
    };
    for (model, wafer_count) in cases {
        let wafers = MultiWaferSystem::new(WaferConfig::hpca(), wafer_count).unwrap();
        let workload = Workload::for_model(&model);
        let temp = Temp::new(WaferConfig::hpca(), model.clone(), workload);
        // Baselines resort to high-degree PP (2x wafer count).
        let mut best_base: Option<(String, f64, f64)> = None;
        for system in BaselineSystem::six_baselines() {
            let rep = temp.evaluate_multiwafer(&system, &wafers, 2);
            if let Some(plan) = rep.plan.as_ref() {
                let tput = rep.throughput(temp.workload());
                let cand = (rep.system.clone(), tput, plan.bubble_time / plan.step_time);
                if best_base
                    .as_ref()
                    .map(|(_, t, _)| cand.1 > *t)
                    .unwrap_or(true)
                {
                    best_base = Some(cand);
                }
            }
        }
        let t = temp.evaluate_multiwafer(&BaselineSystem::temp(), &wafers, 1);
        match (best_base, t.plan.as_ref()) {
            (Some((name, bt, bb)), Some(plan)) => {
                println!(
                    "{:<20} {:>7} {:>12} {:>4.2}x b={:.0}% {:>12.2}x b={:.0}% h={:.0}%",
                    model.name,
                    wafer_count,
                    name,
                    1.0,
                    100.0 * bb,
                    t.throughput(temp.workload()) / bt,
                    100.0 * plan.bubble_time / plan.step_time,
                    100.0 * plan.handoff_time / plan.step_time,
                );
                let cuts: Vec<String> = plan
                    .blocks_per_stage()
                    .iter()
                    .enumerate()
                    .map(|(s, k)| {
                        let tag = if s == 0 {
                            "emb+"
                        } else if s == plan.stage_count() - 1 {
                            "head+"
                        } else {
                            ""
                        };
                        format!("w{}:{tag}{k}L", plan.stages[s].wafer)
                    })
                    .collect();
                println!(
                    "  stages: {} (body {}, bottleneck {:.1} ms/micro)",
                    cuts.join(" -> "),
                    plan.body.config.label(),
                    1e3 * plan.bottleneck_time
                );
                // Against the retained uniform-multiplier costing. The
                // uniform model divides layers *fractionally* across
                // stages, which real integer cuts cannot always match
                // (126 layers on 4 wafers), so the stage plan is allowed
                // the one-block rounding term — beyond that it must win.
                let uniform = temp.evaluate_multiwafer_uniform(&BaselineSystem::temp(), &wafers, 1);
                let saved = 1.0 - plan.step_time / uniform.step_time();
                println!(
                    "  vs uniform-multiplier costing: {:+.2}% faster",
                    100.0 * saved
                );
                let rounding_slack = wafer_count as f64 / model.layers as f64;
                assert!(
                    plan.step_time <= uniform.step_time() * (1.0 + rounding_slack),
                    "stage partition regressed past the uniform plan beyond \
                     integer-cut rounding"
                );
            }
            _ => println!("{:<20} {:>7} OOM everywhere", model.name, wafer_count),
        }
    }
    println!("(paper: TEMP 1.2-1.6x over baselines with smaller pipeline bubbles)");
}
