//! Fig. 19: multi-wafer scaling — TEMP (low PP degree + TATP) vs baselines
//! (high PP degree) on 175B-504B models.

use temp_bench::header;
use temp_core::baselines::BaselineSystem;
use temp_core::framework::Temp;
use temp_graph::models::ModelZoo;
use temp_graph::workload::Workload;
use temp_wsc::config::WaferConfig;
use temp_wsc::multiwafer::MultiWaferSystem;

fn main() {
    header("Fig. 19: multi-wafer training (normalized throughput; bubble share)");
    println!(
        "{:<20} {:>7} {:>22} {:>22}",
        "model", "wafers", "best baseline (PP=2W)", "TEMP (PP=W)"
    );
    let cases = [
        (ModelZoo::gpt3_175b(), 2usize),
        (ModelZoo::grok1_341b(), 4),
        (ModelZoo::llama3_405b(), 4),
        (ModelZoo::gpt3_504b(), 6),
    ];
    for (model, wafer_count) in cases {
        let wafers = MultiWaferSystem::new(WaferConfig::hpca(), wafer_count).unwrap();
        let workload = Workload::for_model(&model);
        let temp = Temp::new(WaferConfig::hpca(), model.clone(), workload);
        // Baselines resort to high-degree PP (2x wafer count).
        let mut best_base: Option<(String, f64, f64)> = None;
        for system in BaselineSystem::six_baselines() {
            let rep = temp.evaluate_multiwafer(&system, &wafers, 2);
            if let Some(c) = rep.report() {
                let cand = (
                    rep.system.clone(),
                    c.throughput,
                    c.bubble_time / c.step_time,
                );
                if best_base
                    .as_ref()
                    .map(|(_, t, _)| cand.1 > *t)
                    .unwrap_or(true)
                {
                    best_base = Some(cand);
                }
            }
        }
        let t = temp.evaluate_multiwafer(&BaselineSystem::temp(), &wafers, 1);
        match (best_base, t.report()) {
            (Some((name, bt, bb)), Some(c)) => {
                println!(
                    "{:<20} {:>7} {:>12} {:>4.2}x b={:.0}% {:>12.2}x b={:.0}%",
                    model.name,
                    wafer_count,
                    name,
                    1.0,
                    100.0 * bb,
                    c.throughput / bt,
                    100.0 * c.bubble_time / c.step_time
                );
            }
            _ => println!("{:<20} {:>7} OOM everywhere", model.name, wafer_count),
        }
    }
    println!("(paper: TEMP 1.2-1.6x over baselines with smaller pipeline bubbles)");
}
