//! Fig. 7: why TATP — ring allocability (a), signal integrity (b), and
//! compute utilization of physical vs logical rings (c).

use temp_bench::header;
use temp_graph::models::ModelZoo;
use temp_parallel::schedule::{lower_stream, StreamCost};
use temp_parallel::tatp::TatpOrchestration;
use temp_parallel::tspp::TsppOrchestration;
use temp_sim::engine::ScheduleEngine;
use temp_wsc::config::WaferConfig;
use temp_wsc::rings::{allocate_groups, ring_fraction, GroupPolicy};
use temp_wsc::signal::SignalModel;
use temp_wsc::topology::{DieId, Mesh};
use temp_wsc::units::MB;

fn main() {
    header("Fig. 7(a): degree-6 groups on a 9x6 array — contiguous-ring fraction");
    let mesh = Mesh::new(9, 6).unwrap();
    for (name, policy) in [
        ("row-major strips", GroupPolicy::RowMajorStrips),
        ("topology-aware blocks", GroupPolicy::Blocks),
    ] {
        let groups = allocate_groups(&mesh, 6, policy);
        println!(
            "{name:<22}: {}/{} groups embed physical rings",
            (ring_fraction(&groups) * groups.len() as f64).round() as usize,
            groups.len()
        );
    }

    header("Fig. 7(b): interposer signal loss (dB) vs trace length and frequency");
    let model = SignalModel::default();
    println!(
        "{:>8} {:>8} {:>8} {:>8} {:>8}  region",
        "freq GHz", "30mm", "50mm", "100mm", "150mm"
    );
    for freq in [2.0, 4.0, 6.0, 8.0, 10.0] {
        let losses: Vec<f64> = [30.0, 50.0, 100.0, 150.0]
            .iter()
            .map(|l| model.loss_db(*l, freq))
            .collect();
        println!(
            "{freq:>8.0} {:>8.1} {:>8.1} {:>8.1} {:>8.1}  {}",
            losses[0],
            losses[1],
            losses[2],
            losses[3],
            if model.is_disallowed(150.0) {
                "150mm disallowed"
            } else {
                ""
            }
        );
    }
    println!(
        "reliable-without-FEC knee: {:.0} mm",
        model.max_length_mm(16.0, 8.0)
    );

    header("Fig. 7(c): compute utilization, physical-path TATP vs logical-ring TSPP");
    println!(
        "{:<14} {:>10} {:>14} {:>14}",
        "wafer", "model", "TATP util %", "TSPP util %"
    );
    for (w, h) in [(5u32, 4u32), (8, 4), (8, 6), (10, 8)] {
        let cfg = WaferConfig::with_array(w, h).unwrap();
        let mesh = cfg.mesh();
        let engine = ScheduleEngine::new(&cfg);
        let n = (w * h).min(16) as usize; // parallel degree per group
        for model in [
            ModelZoo::llama2_7b(),
            ModelZoo::llama2_30b(),
            ModelZoo::llama2_70b(),
        ] {
            // Per-round sub-GEMM cost of the model's FC1 on this group.
            let weight_mb = (model.hidden * model.ffn_hidden * 2) as f64 / (n as f64);
            let cost = StreamCost {
                chunk_bytes: weight_mb,
                compute_seconds: 60.0e-6,
                flops: 1.0e10,
                hbm_bytes: 8.0 * MB,
            };
            // TATP on a snake path (always available).
            let snake: Vec<DieId> = temp_wsc::rings::snake_order(&mesh)
                .into_iter()
                .take(n)
                .collect();
            let tatp = TatpOrchestration::build(n);
            let rt = engine.run(&lower_stream(tatp.stream(), &mesh, &snake, &cost).unwrap());
            // TSPP on a row-major strip (the naive, tetris-prone mapping).
            let strip: Vec<DieId> = mesh.dies().take(n).collect();
            let tspp = TsppOrchestration::build(n);
            let rs = engine.run(&lower_stream(tspp.stream(), &mesh, &strip, &cost).unwrap());
            println!(
                "{:<14} {:>10} {:>13.0}% {:>13.0}%",
                format!("{w}x{h}"),
                model.name.split(' ').next_back().unwrap_or(""),
                100.0 * rt.compute_time / rt.total_time,
                100.0 * rs.compute_time / rs.total_time,
            );
        }
    }
}
