//! Fig. 21: DNN cost-model accuracy vs multivariate regression on the three
//! latency classes (500 cases each).

use temp_bench::header;
use temp_surrogate::dataset::{generate, TargetClass};
use temp_surrogate::linreg::LinearRegression;
use temp_surrogate::metrics::{mean_relative_error, pearson};
use temp_surrogate::mlp::{Mlp, TrainParams};

fn main() {
    header("Fig. 21: cost-model accuracy (500 cases per class, 80/20 split)");
    println!(
        "{:<12} {:>14} {:>12} {:>14} {:>12}",
        "class", "baseline corr", "baseline err", "DNN corr", "DNN err"
    );
    for (class, name) in [
        (TargetClass::Compute, "compute"),
        (TargetClass::Collective, "collective"),
        (TargetClass::Overlap, "overlap"),
    ] {
        let data = generate(class, 500, 42);
        let (train, test) = data.split(0.8);
        let lr = LinearRegression::fit(&train);
        let mlp = Mlp::train(&train, &TrainParams::default());
        let lp = lr.predict_all(&test);
        let mp = mlp.predict_all(&test);
        println!(
            "{:<12} {:>14.3} {:>11.1}% {:>14.3} {:>11.1}%",
            name,
            pearson(&lp, &test.targets),
            100.0 * mean_relative_error(&lp, &test.targets),
            pearson(&mp, &test.targets),
            100.0 * mean_relative_error(&mp, &test.targets),
        );
    }
    // Lookup-vs-simulate speed.
    let data = generate(TargetClass::Compute, 200, 7);
    let mlp = Mlp::train(
        &data,
        &TrainParams {
            epochs: 200,
            ..Default::default()
        },
    );
    let t0 = std::time::Instant::now();
    let mut acc = 0.0;
    for f in &data.features {
        acc += mlp.predict(f);
    }
    let per_query = t0.elapsed().as_secs_f64() / data.len() as f64;
    println!(
        "\nDNN lookup: {:.1} us/query (sum {acc:.3e}; paper: 100-1000x faster than simulation)",
        per_query * 1e6
    );
}
