//! Fig. 17: Llama2 7B under every (DP, TP, SP, TATP) tuple on 32 dies with
//! the TCME engine, for 2k and 16k sequences.

use temp_bench::header;
use temp_graph::models::ModelZoo;
use temp_graph::workload::Workload;
use temp_mapping::engines::MappingEngine;
use temp_parallel::strategy::HybridConfig;
use temp_solver::cost::WaferCostModel;
use temp_solver::dlws::Dlws;
use temp_wsc::config::WaferConfig;

fn main() {
    for (seq, batch) in [(2048u64, 128u64), (16_384, 32)] {
        header(&format!(
            "Fig. 17: Llama2 7B, seq={seq}, batch={batch} (throughput, best=1.0)"
        ));
        let model = ModelZoo::llama2_7b();
        let workload = Workload::training(batch, seq);
        let cost = WaferCostModel::new(WaferConfig::hpca(), model, workload);
        let mut results: Vec<(String, f64, usize)> = Vec::new();
        for cfg in HybridConfig::enumerate_tuples(32, false) {
            match cost.evaluate(&cfg, MappingEngine::Tcme) {
                Ok(r) if r.fits_memory => results.push((cfg.label(), r.throughput, cfg.tatp)),
                _ => results.push((cfg.label(), 0.0, cfg.tatp)),
            }
        }
        results.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let best = results[0].1;
        println!("top configurations (DP,TP,SP,TATP):");
        for (label, tput, _) in results.iter().take(8) {
            if *tput > 0.0 {
                println!("  {label:<12} {:.3}", tput / best);
            }
        }
        let avg = |with: bool| {
            let v: Vec<f64> = results
                .iter()
                .filter(|(_, t, tatp)| *t > 0.0 && ((*tatp > 1) == with))
                .map(|(_, t, _)| *t / best)
                .collect();
            v.iter().sum::<f64>() / v.len().max(1) as f64
        };
        println!(
            "mean normalized throughput: with TATP {:.3} | without TATP {:.3}",
            avg(true),
            avg(false)
        );
        let oom = results.iter().filter(|(_, t, _)| *t == 0.0).count();
        println!("OOM/infeasible configurations: {oom}/{}", results.len());

        // The heterogeneous chain on the same sweep: per-segment tuples of
        // the solved plan (the embedding/head may leave the blocks' tuple
        // when the saving beats the boundary reshard).
        let model = ModelZoo::llama2_7b();
        let solver = Dlws::new(WaferConfig::hpca(), model, Workload::training(batch, seq));
        match solver.solve() {
            Ok(plan) => {
                let assignment: Vec<String> = plan
                    .segments
                    .iter()
                    .map(|s| format!("{}:{}", s.kind, s.config.label()))
                    .collect();
                println!(
                    "chain assignment: {} (chain {:.4} s vs uniform {:.4} s)",
                    assignment.join(" -> "),
                    plan.chain_cost,
                    plan.report.step_time
                );
            }
            Err(e) => println!("chain assignment: no feasible plan ({e})"),
        }
    }
}
