//! Fig. 15: GPU cluster vs WSC at matched FP16 peak (32 x A100 = 32 dies at
//! 312 TFLOPS each): GPU+MeSP vs Wafer+MeSP vs Wafer+TEMP.

use temp_bench::header;
use temp_core::baselines::{BaselineSystem, Partitioner};
use temp_core::framework::Temp;
use temp_core::gpu::GpuCluster;
use temp_graph::models::ModelZoo;
use temp_graph::workload::Workload;
use temp_mapping::engines::MappingEngine;
use temp_wsc::config::WaferConfig;

fn main() {
    header("Fig. 15: normalized throughput (GPU+MeSP = 1.0)");
    println!(
        "{:<18} {:>10} {:>12} {:>12}",
        "model", "GPU+MeSP", "Wafer+MeSP", "Wafer+TEMP"
    );
    // Derate the wafer's dies to the A100 peak for a fair comparison.
    let mut wafer = WaferConfig::hpca();
    wafer.die.peak_flops = 312.0e12;
    wafer.die.flops_per_watt = 312.0e12 / 400.0; // A100-class 400 W envelope
    let cluster = GpuCluster::default();
    let mut ratios_mesp = Vec::new();
    let mut ratios_gpu = Vec::new();
    for model in ModelZoo::table2() {
        let workload = Workload::for_model(&model);
        let gpu = cluster.evaluate_mesp(&model, &workload);
        let temp = Temp::new(wafer.clone(), model.clone(), workload);
        let mesp = temp.evaluate_system(&BaselineSystem {
            partitioner: Partitioner::MeSP,
            engine: MappingEngine::GMap,
        });
        let t = temp.evaluate_system(&BaselineSystem::temp());
        let wafer_mesp = mesp.report().map(|c| c.throughput).unwrap_or(0.0);
        let wafer_temp = t.report().map(|c| c.throughput).unwrap_or(0.0);
        println!(
            "{:<18} {:>10.3} {:>12.3} {:>12.3}",
            model.name,
            1.0,
            wafer_mesp / gpu.throughput,
            wafer_temp / gpu.throughput
        );
        if wafer_mesp > 0.0 {
            ratios_mesp.push(wafer_temp / wafer_mesp);
        }
        if gpu.throughput > 0.0 && wafer_temp > 0.0 {
            ratios_gpu.push(wafer_temp / gpu.throughput);
        }
    }
    let avg = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len().max(1) as f64;
    header("averages (paper: Wafer+TEMP 1.16x over GPU+MeSP, 1.26x over Wafer+MeSP)");
    println!(
        "Wafer+TEMP vs GPU+MeSP: {:.2}x | Wafer+TEMP vs Wafer+MeSP: {:.2}x",
        avg(&ratios_gpu),
        avg(&ratios_mesp)
    );
}
