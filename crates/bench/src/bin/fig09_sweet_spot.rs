//! Fig. 9: the TATP parallel-degree sweet spot — throughput, memory and
//! power vs die count N for one GPT-3 175B linear layer.

use temp_bench::header;
use temp_graph::models::ModelZoo;
use temp_graph::workload::Workload;
use temp_mapping::engines::MappingEngine;
use temp_parallel::strategy::HybridConfig;
use temp_solver::cost::WaferCostModel;
use temp_wsc::config::WaferConfig;
use temp_wsc::units::GB;

fn main() {
    header("Fig. 9: TATP degree sweep on one GPT-3 175B layer (normalized)");
    println!(
        "{:>4} {:>12} {:>12} {:>10} {:>22}",
        "N", "throughput", "mem/die GB", "power kW", "power breakdown c/d/m %"
    );
    let mut base_tput = None;
    for n in [2u32, 4, 8, 16, 32, 64] {
        let (w, h) = match n {
            2 => (2, 1),
            4 => (2, 2),
            8 => (4, 2),
            16 => (4, 4),
            32 => (8, 4),
            _ => (8, 8),
        };
        let wafer = WaferConfig::with_array(w, h).unwrap();
        let mut model = ModelZoo::gpt3_175b();
        model.layers = 1;
        let workload = Workload::training(16, 2048);
        let cost = WaferCostModel::new(wafer, model, workload);
        let cfg = HybridConfig::tatp(n as usize);
        match cost.evaluate(&cfg, MappingEngine::Tcme) {
            Ok(r) => {
                let t = r.throughput;
                let base = *base_tput.get_or_insert(t);
                let (c, d, m) = r.energy.breakdown();
                println!(
                    "{n:>4} {:>12.2} {:>12.1} {:>10.2} {:>9.0}/{:.0}/{:.0}",
                    t / base,
                    r.memory.total() / GB,
                    r.power / 1e3,
                    100.0 * c,
                    100.0 * d,
                    100.0 * m
                );
            }
            Err(e) => println!("{n:>4} error: {e}"),
        }
    }
    println!("(paper: throughput/memory sweet spot at N~8-16; power at N~4-8)");
}
