//! Fig. 4: motivation — Megatron-LM's collective share / bandwidth
//! utilization (b) and its memory overhead vs an ideal baseline (c).

use temp_bench::header;
use temp_core::baselines::{BaselineSystem, Partitioner};
use temp_core::framework::Temp;
use temp_graph::models::ModelZoo;
use temp_graph::workload::Workload;
use temp_mapping::engines::MappingEngine;
use temp_parallel::memory::per_die_footprint;
use temp_parallel::strategy::HybridConfig;
use temp_wsc::config::WaferConfig;
use temp_wsc::units::{pj_per_bit_to_joules_per_byte, GB};

fn main() {
    let wafer = WaferConfig::hpca();
    header("Fig. 4(b): Megatron-1 training-time breakdown on the wafer");
    println!(
        "{:<20} {:>12} {:>12}",
        "model", "collective %", "D2D BW util %"
    );
    let models = [
        ModelZoo::gpt3_6_7b(),
        ModelZoo::gpt3_76b(),
        ModelZoo::gpt3_175b(),
        ModelZoo::deepseek_7b(),
        ModelZoo::deepseek_67b(),
        ModelZoo::deepseek_v2_236b(),
    ];
    for model in &models {
        let temp = Temp::hpca(model.clone());
        let rep = temp.evaluate_system(&BaselineSystem {
            partitioner: Partitioner::Megatron1,
            engine: MappingEngine::SMap,
        });
        match rep.report() {
            Some(c) => {
                // Bytes carried over D2D from the energy ledger.
                let bytes = c.energy.d2d
                    / (pj_per_bit_to_joules_per_byte(wafer.d2d.energy_pj_per_bit) * 1.2);
                let active_links = 2.0 * wafer.die_count() as f64; // ~2 busy links/die
                let util = bytes / (active_links * wafer.d2d.bandwidth * c.step_time);
                println!(
                    "{:<20} {:>11.0}% {:>11.0}%",
                    model.name,
                    100.0 * c.comm_fraction(),
                    (100.0 * util).min(100.0)
                );
            }
            None => println!("{:<20} {:>12} {:>12}", model.name, "OOM", "OOM"),
        }
    }

    header("Fig. 4(c): per-die memory, Megatron (TP=8, DP=4) vs ideal (capacity 72 GB)");
    println!(
        "{:<20} {:>12} {:>10} {:>6}",
        "model", "Megatron GB", "ideal GB", "fits"
    );
    for model in [
        ModelZoo::deepseek_7b(),
        ModelZoo::llama2_70b(),
        ModelZoo::bloom_176b(),
    ] {
        let w = Workload::for_model(&model);
        let mega = per_die_footprint(&model, &w, &HybridConfig::tuple(4, 8, 1, 1));
        let ideal = (w.param_state_bytes(&model) + w.activation_bytes_total(&model)) / 32.0;
        println!(
            "{:<20} {:>11.1} {:>9.1} {:>6}",
            model.name,
            mega.total() / GB,
            ideal / GB,
            if mega.fits(wafer.hbm.capacity) {
                "yes"
            } else {
                "OOM"
            }
        );
    }
}
