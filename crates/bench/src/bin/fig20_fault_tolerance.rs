//! Fig. 20: throughput under link faults (cliff) and core faults
//! (graceful) — re-solved by the real planner on the degraded fabric.
//!
//! Each point injects seeded faults into the mesh, re-runs the full DLWS
//! search against the derated cost model ([`temp_solver::faultcamp`]),
//! and reports the re-solved plan's throughput relative to the healthy
//! plan. The closed-form adaptation model (`temp_core::fault`) is kept
//! as a labeled baseline so the two can be compared point by point.
//!
//! `--smoke` runs one model on short rate lists with 2 seeds — the CI
//! sanity check that degraded-fabric planning stays alive. `--json
//! <path>` appends one single-line JSON record (uniquely-named fields,
//! so it coexists with `search_time`'s record in `BENCH_search.json`).

use std::time::Instant;

use temp_bench::header;
use temp_core::fault::{core_fault_sweep, link_fault_sweep};
use temp_graph::models::ModelZoo;
use temp_solver::faultcamp::{self, CampaignCurve, CampaignSpec, FaultKind};
use temp_wsc::config::WaferConfig;

fn print_curve(curve: &CampaignCurve) {
    let what = match curve.kind {
        FaultKind::Link => "link",
        FaultKind::Core => "core",
    };
    for p in &curve.points {
        println!(
            "{:<12} {what} faults {:>4.0}% -> re-solved throughput {:>5.2} ({}/{} seeds feasible)",
            curve.model,
            100.0 * p.rate,
            p.relative_throughput,
            p.feasible_seeds,
            p.seeds
        );
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let json_path = std::env::args()
        .position(|a| a == "--json")
        .and_then(|i| std::env::args().nth(i + 1));
    let wafer = WaferConfig::hpca();
    let (models, link_rates, core_rates, seeds) = if smoke {
        (
            vec![ModelZoo::gpt3_6_7b()],
            vec![0.0, 0.35, 0.8],
            vec![0.0, 0.25],
            2u64,
        )
    } else {
        (
            vec![
                ModelZoo::gpt3_6_7b(),
                ModelZoo::llama3_70b(),
                ModelZoo::gpt3_175b(),
            ],
            faultcamp::fig20_link_rates(),
            faultcamp::fig20_core_rates(),
            8u64,
        )
    };

    // The whole figure — every (model x fault kind x rate x seed) — is
    // one flat-batched grid on the work-stealing runtime: lanes are
    // (spec, seed) rate sweeps, each seeding the next rate point's
    // incumbent with the previous winner.
    let specs: Vec<CampaignSpec> = models
        .iter()
        .map(|m| CampaignSpec {
            model: m.clone(),
            kind: FaultKind::Link,
            rates: link_rates.clone(),
        })
        .chain(models.iter().map(|m| CampaignSpec {
            model: m.clone(),
            kind: FaultKind::Core,
            rates: core_rates.clone(),
        }))
        .collect();
    let t0 = Instant::now();
    let mut curves = faultcamp::run_campaigns(&wafer, &specs, seeds);
    let campaign_s = t0.elapsed().as_secs_f64();
    let core_curves: Vec<CampaignCurve> = curves.split_off(models.len());
    let link_curves = curves;

    header("Fig. 20(b): throughput vs link fault rate (degraded-fabric re-solves)");
    for curve in &link_curves {
        print_curve(curve);
    }
    println!("closed-form baseline (detour model, no re-solve):");
    for (rate, tput) in link_fault_sweep(&wafer, &link_rates, seeds) {
        println!(
            "  link faults {:>4.0}% -> throughput {:>5.2}",
            100.0 * rate,
            tput
        );
    }

    header("Fig. 20(c): throughput vs core fault rate (degraded-fabric re-solves)");
    for curve in &core_curves {
        print_curve(curve);
    }
    println!("closed-form baseline (derating model, no re-solve):");
    for (rate, tput) in core_fault_sweep(&wafer, &core_rates, seeds) {
        println!(
            "  core faults {:>4.0}% -> throughput {:>5.2}",
            100.0 * rate,
            tput
        );
    }
    println!("(paper: cliff by ~35-50% link faults; ~80% throughput at 25% core faults)");
    let lane_count = specs.len() as u64 * seeds;
    println!(
        "flat-batched campaign: {lane_count} lanes ({} specs x {seeds} seeds) in {campaign_s:.2} s",
        specs.len()
    );

    // Campaign invariants beyond the per-plan memory verdict (which
    // run_campaign already enforces): healthy points score 1.0 exactly,
    // and the paper's two curve shapes come out of the re-solves.
    for curve in link_curves.iter().chain(&core_curves) {
        if curve.points.first().map(|p| p.rate) == Some(0.0) {
            assert!(
                (curve.head() - 1.0).abs() < 1e-9,
                "{}: healthy re-solve must score 1.0, got {}",
                curve.model,
                curve.head()
            );
        }
    }
    for curve in &core_curves {
        // Models with memory headroom degrade gracefully. Models that
        // barely fit the healthy wafer (GPT-3 175B under Full recompute)
        // hit the *derated-memory wall* instead: the worst surviving die
        // bounds every candidate's footprint, so no plan fits — a
        // capacity cliff the closed-form derating model cannot see.
        let wall = curve.points.iter().find(|p| p.feasible_seeds == 0);
        match wall {
            Some(p) => println!(
                "{}: derated-memory wall at {:.0}% core faults (no feasible plan)",
                curve.model,
                100.0 * p.rate
            ),
            None => assert!(
                curve.tail() > 0.5,
                "{}: core faults must degrade gracefully, got {}",
                curve.model,
                curve.tail()
            ),
        }
    }
    if let Some(p) = link_curves[0].points.iter().find(|p| p.rate >= 0.8) {
        assert_eq!(
            p.feasible_seeds, 0,
            "80% link faults must disconnect every seed's mesh"
        );
    }

    if let Some(path) = json_path {
        // One single-line record appended after search_time's (vendored
        // serde is a no-op stub, so the record is assembled by hand).
        let record = format!(
            concat!(
                "{{\"bench\":\"fig20_fault\",\"smoke\":{},\"fault_models\":{},",
                "\"fault_seeds\":{},\"fault_campaign_s\":{:.4},\"fault_lanes\":{},",
                "\"fault_link_head\":{:.4},\"fault_link_tail\":{:.4},",
                "\"fault_core_head\":{:.4},\"fault_core_tail\":{:.4},",
                "\"fault_link_tail_feasible\":{},\"fault_plans_fit\":true}}\n"
            ),
            smoke,
            models.len(),
            seeds,
            campaign_s,
            lane_count,
            link_curves[0].head(),
            link_curves[0].tail(),
            core_curves[0].head(),
            core_curves[0].tail(),
            link_curves[0]
                .points
                .last()
                .map(|p| p.feasible_seeds)
                .unwrap_or(0),
        );
        use std::io::Write;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .expect("open bench JSON for append");
        file.write_all(record.as_bytes())
            .expect("append bench JSON");
        println!("\nappended fig20_fault record to {path}");
    }
}
