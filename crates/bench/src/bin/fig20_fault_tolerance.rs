//! Fig. 20: throughput under link faults (cliff) and core faults (graceful).

use temp_bench::header;
use temp_core::fault::{core_fault_sweep, link_fault_sweep};
use temp_wsc::config::WaferConfig;

fn main() {
    let wafer = WaferConfig::hpca();
    header("Fig. 20(b): normalized throughput vs link fault rate (16 seeds)");
    for (rate, tput) in
        link_fault_sweep(&wafer, &[0.0, 0.1, 0.2, 0.3, 0.35, 0.4, 0.5, 0.6, 0.8], 16)
    {
        println!(
            "link faults {:>4.0}% -> throughput {:>5.2}",
            100.0 * rate,
            tput
        );
    }
    header("Fig. 20(c): normalized throughput vs core fault rate (16 seeds)");
    for (rate, tput) in core_fault_sweep(&wafer, &[0.0, 0.05, 0.10, 0.15, 0.20, 0.25], 16) {
        println!(
            "core faults {:>4.0}% -> throughput {:>5.2}",
            100.0 * rate,
            tput
        );
    }
    println!("(paper: cliff by ~35-50% link faults; ~80% throughput at 25% core faults)");
}
