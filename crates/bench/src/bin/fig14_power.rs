//! Fig. 14: power breakdown and power efficiency for all systems.

use temp_bench::{header, row};
use temp_core::framework::Temp;
use temp_graph::models::ModelZoo;

fn main() {
    header("Fig. 14: normalized power efficiency (higher is better; TEMP last)");
    println!(
        "{:<18} A:Mega+S B:Mega+G C:MeSP+S D:MeSP+G E:FSDP+S F:FSDP+G  TEMP",
        "model"
    );
    for model in ModelZoo::table2() {
        let temp = Temp::hpca(model.clone());
        let reports = temp.compare_all();
        // Efficiency is higher-is-better: an OOM system must not score
        // +inf (the OOM marker appropriate for latency figures). NaN
        // still renders as "OOM" and stays out of the normalization base.
        let eff: Vec<f64> = reports
            .iter()
            .map(|r| r.report().map(|c| c.power_efficiency).unwrap_or(f64::NAN))
            .collect();
        let base = eff
            .iter()
            .copied()
            .find(|v| v.is_finite() && *v > 0.0)
            .unwrap_or(1.0);
        let norm: Vec<f64> = eff.iter().map(|v| v / base).collect();
        row(&model.name, &norm);
        if let Some(c) = reports.last().and_then(|r| r.report()) {
            let (comp, d2d, hbm) = c.energy.breakdown();
            println!(
                "  TEMP power breakdown: compute {:.0}% | comm {:.0}% | memory {:.0}% | avg power {:.1} kW",
                100.0 * comp, 100.0 * d2d, 100.0 * hbm, c.power / 1e3
            );
        }
    }
}
