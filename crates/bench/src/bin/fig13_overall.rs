//! Fig. 13: training latency breakdown + memory usage for the six baselines
//! and TEMP, across the Table II models. Also prints Tables I/II.

use temp_bench::{header, row};
use temp_core::framework::{geomean_speedup, normalize, Temp};
use temp_graph::models::ModelZoo;
use temp_solver::pool::ContextPool;
use temp_wsc::config::WaferConfig;
use temp_wsc::units::GB;

fn main() {
    let wafer = WaferConfig::hpca();
    // One context pool for the whole zoo sweep: the candidate enumeration
    // is shared across models, and a re-run over any model would replay
    // from its warm evaluation cache.
    let pool = ContextPool::new(wafer.clone());
    header("Table I: WSC configuration");
    println!(
        "die array {}x{} | {} TFLOPS/die @ {} TFLOPS/W | SRAM {:.0} MB | HBM {:.0} GB @ {:.0} GB/s | D2D {:.0} GB/s/link/dir, {:.0} ns, {} pJ/bit",
        wafer.mesh_width, wafer.mesh_height,
        wafer.die.peak_flops / 1e12, wafer.die.flops_per_watt / 1e12,
        wafer.die.sram / 1e6, wafer.hbm.capacity / 1e9, wafer.hbm.bandwidth / 1e9,
        wafer.d2d.bandwidth / 1e9, wafer.d2d.latency * 1e9, wafer.d2d.energy_pj_per_bit,
    );
    header("Table II: models");
    for m in ModelZoo::table2() {
        println!("{m}");
    }

    header("Fig. 13: normalized training latency (lower is better) + memory");
    println!(
        "{:<18} A:Mega+S B:Mega+G C:MeSP+S D:MeSP+G E:FSDP+S F:FSDP+G  TEMP",
        "model"
    );
    let mut per_baseline_speedups: Vec<Vec<f64>> = vec![Vec::new(); 6];
    for model in ModelZoo::table2() {
        let temp = Temp::pooled(&pool, model.clone());
        let reports = temp.compare_all();
        let times: Vec<f64> = reports.iter().map(|r| r.step_time()).collect();
        row(&model.name, &normalize(&times));
        let temp_report = reports
            .iter()
            .find(|r| r.system == "TEMP")
            .unwrap_or_else(|| reports.last().expect("compare_all is non-empty"));
        if let Some(plan) = temp_report.plan.as_ref() {
            if plan.is_heterogeneous() {
                let assignment: Vec<String> = plan
                    .segments
                    .iter()
                    .map(|s| format!("{}:{}", s.kind, s.config.label()))
                    .collect();
                println!(
                    "  chain: {} ({:.2}% below uniform)",
                    assignment.join(" -> "),
                    100.0 * (1.0 - plan.chain_cost / plan.report.step_time)
                );
            }
        }
        let mems: Vec<f64> = reports
            .iter()
            .map(|r| {
                r.report()
                    .map(|c| c.memory.total() / GB)
                    .unwrap_or(f64::INFINITY)
            })
            .collect();
        row("  mem (GB/die)", &mems);
        let comm: Vec<f64> = reports
            .iter()
            .map(|r| r.report().map(|c| c.comm_fraction()).unwrap_or(f64::NAN))
            .collect();
        row("  comm fraction", &comm);
        let temp_time = times[6];
        for (i, t) in times[..6].iter().enumerate() {
            if t.is_finite() {
                per_baseline_speedups[i].push(t / temp_time);
            }
        }
    }
    header(
        "TEMP end-to-end speedup vs each baseline (geomean; paper: 1.69/1.35/1.38/1.24/1.39/1.20x)",
    );
    let labels = [
        "Mega+SMap",
        "Mega+GMap",
        "MeSP+SMap",
        "MeSP+GMap",
        "FSDP+SMap",
        "FSDP+GMap",
    ];
    for (label, sp) in labels.iter().zip(&per_baseline_speedups) {
        let ones: Vec<f64> = sp.iter().map(|_| 1.0).collect();
        println!(
            "vs {label:<10}: {:.2}x (over {} non-OOM models)",
            geomean_speedup(sp, &ones),
            sp.len()
        );
    }
}
