//! Fig. 16: ablation — FSDP+SMap base, +TATP, +TATP+TCME.

use temp_bench::{header, row};
use temp_core::baselines::{BaselineSystem, Partitioner};
use temp_core::framework::Temp;
use temp_graph::models::ModelZoo;
use temp_mapping::engines::MappingEngine;

fn main() {
    header("Fig. 16: ablation (normalized throughput; base = FSDP+SMap = 1.0)");
    println!(
        "{:<18} {:>8} {:>10} {:>16} {:>8}",
        "model", "base", "+TATP", "+TATP+TCME", "+chain"
    );
    let mut gains_tatp = Vec::new();
    let mut gains_tcme = Vec::new();
    let mut gains_chain = Vec::new();
    for model in ModelZoo::table2() {
        let temp = Temp::hpca(model.clone());
        let base = temp.evaluate_system(&BaselineSystem {
            partitioner: Partitioner::Fsdp,
            engine: MappingEngine::SMap,
        });
        let plus_tatp = temp.evaluate_system(&BaselineSystem {
            partitioner: Partitioner::Temp,
            engine: MappingEngine::SMap,
        });
        let full = temp.evaluate_system(&BaselineSystem::temp());
        let b = base.step_time();
        let base_col = if b.is_finite() { 1.0 } else { f64::INFINITY };
        // The final ablation stage: the heterogeneous segment-chain DP on
        // top of TATP+TCME (embedding/head free to diverge from blocks).
        let series = [
            base_col,
            b / plus_tatp.step_time(),
            b / full.step_time(),
            b / full.chain_cost(),
        ];
        row(&model.name, &series);
        if series.iter().all(|g| g.is_finite()) {
            gains_tatp.push(series[1]);
            gains_tcme.push(series[2] / series[1]);
            gains_chain.push(series[3] / series[2]);
        }
    }
    let avg = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len().max(1) as f64;
    header("averages (paper: +TATP 1.21x, +TCME further 1.14x)");
    println!(
        "+TATP avg: {:.2}x | +TCME avg additional: {:.2}x | +chain avg additional: {:.3}x",
        avg(&gains_tatp),
        avg(&gains_tcme),
        avg(&gains_chain)
    );
}
