//! MoE workloads (fig20_moe): expert-parallel planning on wafer-scale
//! chips — the MoEntwine/WATOS workload family solved through TEMP's
//! segment-chain machinery.
//!
//! For every MoE zoo model this prints the solved mixed dense/MoE chain
//! (the MoE run picks an expert-parallel tuple; the dense blocks do not
//! pay for experts they do not have), the gated-vs-exact evaluation
//! counts, and the two-wafer stage partition whose weighted cuts respect
//! the expert-heavy stretch.
//!
//! `--smoke` runs only the fine-grained DeepSeek-style config — the CI
//! sanity check that MoE planning stays alive.

use temp_bench::header;
use temp_core::baselines::BaselineSystem;
use temp_core::framework::Temp;
use temp_graph::models::ModelZoo;
use temp_graph::segment::SegmentKind;
use temp_graph::workload::Workload;
use temp_solver::cost::WaferCostModel;
use temp_solver::dlws::Dlws;
use temp_solver::search::{CostTier, SearchContext};
use temp_wsc::config::WaferConfig;
use temp_wsc::multiwafer::MultiWaferSystem;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    header("MoE workloads: expert segments, expert parallelism, all-to-all");
    let models = if smoke {
        vec![ModelZoo::deepseek_moe_16b()]
    } else {
        ModelZoo::moe_zoo()
    };
    for model in models {
        let name = model.name.clone();
        let moe = model.moe.expect("MoE zoo models carry a MoeConfig");
        println!(
            "\n{name}: {} experts (top-{}, capacity {:.2}), {} dense + {} MoE layers",
            moe.num_experts,
            moe.top_k,
            moe.capacity_factor,
            model.dense_layer_count(),
            model.moe_layer_count()
        );

        // Gated solve on a cold context, then the exact solve from the
        // warm cache — the retention comparison is bit-exact.
        let workload = Workload::for_model(&model);
        let ctx = std::sync::Arc::new(SearchContext::new(WaferCostModel::new(
            WaferConfig::hpca(),
            model.clone(),
            workload,
        )));
        let solver = Dlws::from_context(ctx.clone());
        ctx.set_cost_tier(CostTier::SurrogateGated);
        let gated = solver.solve().expect("gated MoE plan");
        let gated_evals = ctx.stats().misses;
        ctx.set_cost_tier(CostTier::Exact);
        let exact = solver.solve().expect("exact MoE plan");
        let exact_evals = ctx.stats().misses;
        println!(
            "  chain {:.4} s (uniform {:.4} s) | gated {} evals vs exact {} ({}x fewer, plans match: {})",
            exact.chain_cost,
            exact.report.step_time,
            gated_evals,
            exact_evals,
            exact_evals / gated_evals.max(1),
            gated == exact
        );
        for seg in &exact.segments {
            println!(
                "  {:>9} x{:<3} -> {:<16} {:.4} s",
                seg.kind.to_string(),
                seg.count,
                seg.config.label(),
                seg.step_time
            );
        }
        let moe_seg = exact
            .segments
            .iter()
            .find(|s| s.kind == SegmentKind::MoeBlock)
            .expect("mixed chain has a MoE run");
        assert!(
            moe_seg.config.ep > 1,
            "{name}: the MoE run must pick an expert-parallel tuple"
        );
        assert_eq!(gated, exact, "{name}: gated must retain the exact plan");

        // Two wafers: the weighted stage cuts against the retained
        // uniform-multiplier costing.
        let temp = Temp::from_solver(solver);
        let wafers = MultiWaferSystem::new(temp.wafer().clone(), 2).unwrap();
        let staged = temp.evaluate_multiwafer(&BaselineSystem::temp(), &wafers, 1);
        let uniform = temp.evaluate_multiwafer_uniform(&BaselineSystem::temp(), &wafers, 1);
        let plan = staged.plan.as_ref().expect("two-wafer MoE plan");
        let cuts: Vec<String> = plan
            .stages
            .iter()
            .map(|st| {
                let kinds: Vec<String> = st
                    .chain
                    .segments()
                    .iter()
                    .map(|s| format!("{}x{}", s.kind, s.count))
                    .collect();
                format!("w{}[{}]", st.wafer, kinds.join("+"))
            })
            .collect();
        println!(
            "  2 wafers: step {:.4} s vs uniform {:.4} s ({:+.2}%) | {}",
            plan.step_time,
            uniform.step_time(),
            100.0 * (1.0 - plan.step_time / uniform.step_time()),
            cuts.join(" -> ")
        );
        assert!(
            plan.step_time <= uniform.step_time() * (1.0 + 1e-9),
            "{name}: stage partition must not regress past the uniform plan"
        );
    }
    println!("\n(expert placement is its own optimization problem on wafer meshes — MoEntwine arXiv:2510.25258)");
}
