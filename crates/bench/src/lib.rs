//! # temp-bench — experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §4 for the full
//! index), plus criterion micro-benchmarks of the framework's kernels.
//! Run an experiment with `cargo run -p temp-bench --release --bin <name>`.

/// Prints a section header in the style used by every experiment binary.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Formats a normalized series row; infinite entries print as OOM.
pub fn row(label: &str, values: &[f64]) {
    let cells: Vec<String> = values
        .iter()
        .map(|v| {
            if v.is_finite() {
                format!("{v:7.3}")
            } else {
                "    OOM".to_string()
            }
        })
        .collect();
    println!("{label:<18} {}", cells.join(" "));
}

#[cfg(test)]
mod tests {
    #[test]
    fn helpers_do_not_panic() {
        super::header("t");
        super::row("r", &[1.0, f64::INFINITY]);
    }
}
