//! # temp-bench — experiment harness
//!
//! One binary per table/figure of the paper (see the README's
//! figure-to-binary map), plus self-harnessed micro-benchmarks of the
//! framework's kernels. Run an experiment with
//! `cargo run -p temp-bench --release --bin <name>`.

use std::time::Instant;

/// Prints a section header in the style used by every experiment binary.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Formats a normalized series row; infinite entries print as OOM.
pub fn row(label: &str, values: &[f64]) {
    let cells: Vec<String> = values
        .iter()
        .map(|v| {
            if v.is_finite() {
                format!("{v:7.3}")
            } else {
                "    OOM".to_string()
            }
        })
        .collect();
    println!("{label:<18} {}", cells.join(" "));
}

/// Times `f` over `iters` runs (after one warm-up run), prints a
/// criterion-style summary line, and returns the mean seconds per run.
/// The closure's result is returned through a `std::hint::black_box` so
/// the optimizer cannot delete the measured work.
pub fn timeit<T>(label: &str, iters: usize, mut f: impl FnMut() -> T) -> f64 {
    let iters = iters.max(1);
    std::hint::black_box(f());
    let mut times = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        std::hint::black_box(f());
        times.push(t0.elapsed().as_secs_f64());
    }
    let mean = times.iter().sum::<f64>() / iters as f64;
    let min = times.iter().copied().fold(f64::INFINITY, f64::min);
    let max = times.iter().copied().fold(0.0f64, f64::max);
    println!(
        "{label:<44} mean {:>10} (min {:>10}, max {:>10}, n={iters})",
        fmt_seconds(mean),
        fmt_seconds(min),
        fmt_seconds(max)
    );
    mean
}

/// Renders a duration in the most readable unit (s/ms/us/ns).
pub fn fmt_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn helpers_do_not_panic() {
        super::header("t");
        super::row("r", &[1.0, f64::INFINITY]);
    }

    #[test]
    fn timeit_returns_positive_mean() {
        let mean = super::timeit("noop", 3, || 1 + 1);
        assert!(mean >= 0.0);
    }

    #[test]
    fn fmt_seconds_picks_units() {
        assert!(super::fmt_seconds(2.0).ends_with(" s"));
        assert!(super::fmt_seconds(2e-3).ends_with(" ms"));
        assert!(super::fmt_seconds(2e-6).ends_with(" us"));
        assert!(super::fmt_seconds(2e-9).ends_with(" ns"));
    }
}
