//! Allocation smoke for the warm-cache costing loop: once the candidate
//! cache is populated, repeated exact costing must not touch the heap.
//! Every hot-path structure is scalar-only ([`CostReport`] clones are
//! flat copies, the collective kernel answers from a thread-local table,
//! per-eval scratch lives in reusable arenas), so a single allocation
//! here is a regression, not noise.
//!
//! The counting allocator is thread-local-gated: only allocations made
//! by the measuring thread between `start()` and `stop()` are counted,
//! so runtime worker threads parked in the background cannot pollute
//! the measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use temp_graph::models::ModelZoo;
use temp_graph::workload::Workload;
use temp_mapping::engines::MappingEngine;
use temp_solver::cost::WaferCostModel;
use temp_solver::search::SearchContext;
use temp_wsc::config::WaferConfig;

struct CountingAlloc;

thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn start_counting() {
    ALLOCS.with(|a| a.set(0));
    COUNTING.with(|c| c.set(true));
}

fn stop_counting() -> u64 {
    COUNTING.with(|c| c.set(false));
    ALLOCS.with(|a| a.get())
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.with(|c| c.get()) {
            ALLOCS.with(|a| a.set(a.get() + 1));
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.with(|c| c.get()) {
            ALLOCS.with(|a| a.set(a.get() + 1));
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// After two warm-up passes (cache fill + lazy-init settle), a sweep of
/// warm-cache `cost_of` evaluations performs zero heap allocations.
#[test]
fn warm_cache_costing_is_allocation_free() {
    let model = ModelZoo::gpt3_6_7b();
    let workload = Workload::for_model(&model);
    let ctx = SearchContext::new(WaferCostModel::new(WaferConfig::hpca(), model, workload));
    // The measurement is per-thread; keep the costing on this thread.
    ctx.set_parallel(false);
    let candidates: Vec<_> = ctx.candidates().iter().take(32).copied().collect();
    assert!(!candidates.is_empty());

    // Pass 1 fills the candidate cache (cold evaluations allocate
    // freely); pass 2 settles any remaining lazy initialization (lock
    // shards, thread-local tables) on the warm path.
    for _ in 0..2 {
        for cfg in &candidates {
            let _ = ctx.cost_of(cfg, MappingEngine::Tcme);
        }
    }

    start_counting();
    let mut acc = 0.0f64;
    for _ in 0..32 {
        for cfg in &candidates {
            let (t, _) = ctx.cost_of(cfg, MappingEngine::Tcme);
            if t.is_finite() {
                acc += t;
            }
        }
    }
    let allocs = stop_counting();
    assert!(acc.is_finite());
    assert_eq!(
        allocs, 0,
        "warm-cache costing loop made {allocs} heap allocations \
         (expected zero after warm-up)"
    );
}
