//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, and nothing in the
//! reproduction actually serializes data yet — the `Serialize` /
//! `Deserialize` derives on domain types only declare *intent* (reports
//! and plans are designed to be dumpable). This crate keeps those derives
//! compiling: the traits are markers with blanket impls and the derive
//! macros (re-exported from `serde_derive`) expand to nothing.
//!
//! When the workspace gains real serialization needs (e.g. persisting
//! bench trajectories), swap this path dependency for crates.io `serde`;
//! every `use serde::{Deserialize, Serialize}` site is already correct.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// sized types.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}
