//! Offline stand-in for the `rand` crate (0.8-style API).
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! implements exactly the surface the workspace uses:
//!
//! * [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`] — deterministic,
//!   seeded generation (fault injection, GA, dataset sweeps);
//! * [`Rng::gen_range`] over half-open `lo..hi` ranges of the common
//!   integer types and floats;
//! * [`Rng::gen_bool`];
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! The generator is SplitMix64 — not cryptographic, but statistically
//! solid for simulation/search workloads and, crucially, *stable*: the
//! repo's seeded tests depend on per-seed determinism, never on matching
//! upstream `rand`'s stream.

use std::ops::Range;

/// Core source of randomness: 64 random bits per call.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling helpers, mirroring the `rand::Rng` extension trait.
pub trait Rng: RngCore {
    /// Uniform sample from the half-open range `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// `[0, 1)` double from the top 53 bits of a word.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types uniformly samplable from a `Range` (subset of rand's
/// `SampleUniform`).
pub trait SampleUniform: Sized {
    /// Uniform sample from `range` using `rng`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range called with empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (range.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range called with empty range");
                range.start + (range.end - range.start) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

pub mod rngs {
    //! Concrete generators.

    use crate::{RngCore, SeedableRng};

    /// Deterministic seeded generator (SplitMix64), standing in for
    /// `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Vigna): passes BigCrush when used as a stream.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

pub mod seq {
    //! Sequence helpers.

    use crate::{Rng, RngCore};

    /// Slice shuffling, standing in for `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle should not be identity");
    }
}
