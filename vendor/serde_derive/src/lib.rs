//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal serde facade (see `vendor/serde`). Serialization is
//! not exercised anywhere in the reproduction — the derives only need to
//! *exist* so that `#[derive(Serialize, Deserialize)]` keeps compiling —
//! so both macros expand to an empty token stream. The marker traits in
//! `vendor/serde` carry blanket impls, which keeps any `T: Serialize`
//! bound satisfiable.

use proc_macro::TokenStream;

/// Expands to nothing; `serde::Serialize` has a blanket impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `serde::Deserialize` has a blanket impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
