//! MoE quickstart: solve the Mixtral-like model on one and two wafers.
//!
//! Demonstrates the expert-parallel axis end to end: the mixed
//! dense/MoE segment chain, the per-segment strategy assignment (the MoE
//! run picks an `ep > 1` tuple while the dense blocks stay expert-free),
//! and the two-wafer stage partition whose cuts respect the expert-heavy
//! stretch.

use temp_repro::core::baselines::BaselineSystem;
use temp_repro::core::framework::Temp;
use temp_repro::graph::models::ModelZoo;
use temp_repro::graph::segment::SegmentKind;
use temp_repro::wsc::multiwafer::MultiWaferSystem;

fn main() {
    let model = ModelZoo::mixtral_8x7b();
    println!("model: {model}");
    let moe = model.moe.expect("MoE config");
    println!(
        "experts: {} (top-{} routing, capacity {:.2}, expert FFN {})",
        moe.num_experts, moe.top_k, moe.capacity_factor, moe.expert_ffn_hidden
    );

    // ---- One wafer ------------------------------------------------------
    let temp = Temp::hpca(model);
    let plan = temp.solve().expect("Mixtral-like plans on one wafer");
    println!(
        "\none wafer: step {:.4} s, chain {:.4} s",
        plan.report.step_time, plan.chain_cost
    );
    for seg in &plan.segments {
        println!(
            "  {:>9} x{:<3} -> {:<14} {:.4} s",
            seg.kind.to_string(),
            seg.count,
            seg.config.label(),
            seg.step_time
        );
    }
    let moe_seg = plan
        .segments
        .iter()
        .find(|s| s.kind == SegmentKind::MoeBlock)
        .expect("mixed chain has a MoE run");
    let dense_seg = plan
        .segments
        .iter()
        .find(|s| s.kind == SegmentKind::Block)
        .expect("mixed chain has a dense run");
    assert!(
        moe_seg.config != dense_seg.config && moe_seg.config.ep > 1,
        "the MoE run must leave the dense blocks' strategy via expert parallelism"
    );

    // ---- Two wafers ------------------------------------------------------
    let wafers = MultiWaferSystem::new(temp.wafer().clone(), 2).expect("two wafers");
    let report = temp.evaluate_multiwafer(&BaselineSystem::temp(), &wafers, 1);
    let mw = report.plan.as_ref().expect("two-wafer plan");
    println!(
        "\ntwo wafers: step {:.4} s (pace {:.4} s, bubble {:.4} s, handoff {:.4} s)",
        mw.step_time, mw.bottleneck_time, mw.bubble_time, mw.handoff_time
    );
    for st in &mw.stages {
        let kinds: Vec<String> = st
            .chain
            .segments()
            .iter()
            .map(|s| format!("{}x{}", s.kind, s.count))
            .collect();
        println!(
            "  stage {} (wafer {}): {:<32} {:.4} s{}",
            st.stage,
            st.wafer,
            kinds.join(" + "),
            st.stage_time,
            if st.inter_wafer_inbound {
                "  [inter-wafer in]"
            } else {
                ""
            }
        );
    }
    assert!(mw.step_time.is_finite());
    println!(
        "\nthroughput: {:.0} tokens/s",
        report.throughput(temp.workload())
    );
}
