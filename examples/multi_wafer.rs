//! Multi-wafer planning: Grok-1 341B across four WSCs (Fig. 19 workflow).
//!
//! ```sh
//! cargo run --release --example multi_wafer
//! ```

use temp_core::baselines::BaselineSystem;
use temp_core::framework::Temp;
use temp_graph::models::ModelZoo;
use temp_wsc::config::WaferConfig;
use temp_wsc::multiwafer::MultiWaferSystem;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = ModelZoo::grok1_341b();
    let wafers = MultiWaferSystem::new(WaferConfig::hpca(), 4)?;
    println!(
        "{} on {} wafers ({} dies, {:.1} TB HBM, {:.0} PFLOPS)",
        model,
        wafers.wafer_count,
        wafers.total_dies(),
        wafers.total_hbm_capacity() / 1e12,
        wafers.total_peak_flops() / 1e15
    );

    let temp = Temp::new(
        WaferConfig::hpca(),
        model,
        temp_graph::workload::Workload::training(128, 8192),
    );

    // TEMP: pipeline degree = wafer count, TATP inside each wafer.
    let t = temp.evaluate_multiwafer(&BaselineSystem::temp(), &wafers, 1);
    // Baseline: FSDP+GMap forced to PP = 2x wafers (no TATP available).
    let base = temp.evaluate_multiwafer(&BaselineSystem::six_baselines()[5], &wafers, 2);

    for rep in [&base, &t] {
        match rep.report() {
            Some(c) => println!(
                "{:<12} pp={} step={:.3}s bubbles={:.0}% config={}",
                rep.system,
                c.config.pp,
                c.step_time,
                100.0 * c.bubble_time / c.step_time,
                c.config.label()
            ),
            None => println!("{:<12} OOM", rep.system),
        }
    }
    if let (Some(b), Some(c)) = (base.report(), t.report()) {
        println!(
            "\nTEMP speedup over FSDP+GMap: {:.2}x",
            b.step_time / c.step_time
        );
    }

    // Deployment sizing: sweep wafer counts and stages-per-wafer in one
    // shared search context — every distinct pipeline degree is solved
    // once and the union of candidate spaces is costed in a single batch.
    println!("\nwafer-count sweep (TEMP):");
    for entry in temp.evaluate_multiwafer_sweep(&BaselineSystem::temp(), &[2, 4, 6], &[1, 2]) {
        match entry.report.report() {
            Some(c) => println!(
                "  {} wafers x {} stages/wafer: step={:.3}s config={}",
                entry.wafer_count,
                entry.pp_multiplier,
                c.step_time,
                c.config.label()
            ),
            None => println!(
                "  {} wafers x {} stages/wafer: OOM",
                entry.wafer_count, entry.pp_multiplier
            ),
        }
    }
    Ok(())
}
