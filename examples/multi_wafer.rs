//! Multi-wafer planning: Grok-1 341B across four WSCs (Fig. 19 workflow),
//! with pipeline stages as real segment-chain slices.
//!
//! ```sh
//! cargo run --release --example multi_wafer
//! ```

use temp_core::baselines::BaselineSystem;
use temp_core::framework::Temp;
use temp_graph::models::ModelZoo;
use temp_wsc::config::WaferConfig;
use temp_wsc::multiwafer::MultiWaferSystem;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = ModelZoo::grok1_341b();
    let wafers = MultiWaferSystem::new(WaferConfig::hpca(), 4)?;
    println!(
        "{} on {} wafers ({} dies, {:.1} TB HBM, {:.0} PFLOPS)",
        model,
        wafers.wafer_count,
        wafers.total_dies(),
        wafers.total_hbm_capacity() / 1e12,
        wafers.total_peak_flops() / 1e15
    );

    let temp = Temp::new(
        WaferConfig::hpca(),
        model,
        temp_graph::workload::Workload::training(128, 8192),
    );
    println!(
        "(parameter state alone needs at least {} wafer(s))",
        temp.min_wafer_count()
    );

    // TEMP: pipeline degree = wafer count, TATP inside each wafer.
    let t = temp.evaluate_multiwafer(&BaselineSystem::temp(), &wafers, 1);
    // Baseline: FSDP+GMap forced to PP = 2x wafers (no TATP available).
    let base = temp.evaluate_multiwafer(&BaselineSystem::six_baselines()[5], &wafers, 2);

    for rep in [&base, &t] {
        match rep.plan.as_ref() {
            Some(plan) => println!(
                "{:<12} stages={} step={:.3}s bubbles={:.0}% handoff={:.1}ms body={}",
                rep.system,
                plan.stage_count(),
                plan.step_time,
                100.0 * plan.bubble_time / plan.step_time,
                1e3 * plan.handoff_time,
                plan.body.config.label()
            ),
            None => println!("{:<12} OOM", rep.system),
        }
    }
    if let (Some(b), Some(c)) = (base.plan.as_ref(), t.plan.as_ref()) {
        println!(
            "\nTEMP speedup over FSDP+GMap: {:.2}x",
            b.step_time / c.step_time
        );
    }

    // The stage table: which slice of the chain each wafer owns. The
    // first stage carries the embedding, the last the LM head; handoffs
    // are priced from the boundary activation tensor at each cut.
    if let Some(plan) = t.plan.as_ref() {
        println!("\nTEMP stage partition:");
        for stage in &plan.stages {
            let runs: Vec<String> = stage
                .chain
                .segments()
                .iter()
                .map(|seg| format!("{}x{}", seg.count, seg.kind))
                .collect();
            println!(
                "  stage {} on wafer {}: {:<24} {:>7.1} ms/micro{}",
                stage.stage,
                stage.wafer,
                runs.join(" + "),
                1e3 * stage.stage_time,
                if stage.inter_wafer_inbound {
                    format!(
                        "  (receives {:.0} MB over the inter-wafer link)",
                        stage.inbound_bytes / 1e6
                    )
                } else {
                    String::new()
                }
            );
        }
    }

    // Deployment sizing: sweep wafer counts and stages-per-wafer in one
    // shared search context — every distinct pipeline degree's candidate
    // batch is costed once and reused across combinations.
    println!("\nwafer-count sweep (TEMP):");
    for entry in temp.evaluate_multiwafer_sweep(&BaselineSystem::temp(), &[2, 4, 6], &[1, 2]) {
        match entry.report.plan.as_ref() {
            Some(plan) => println!(
                "  {} wafers x {} stages/wafer: step={:.3}s pace={:.3}s body={}",
                entry.wafer_count,
                entry.pp_multiplier,
                plan.step_time,
                plan.bottleneck_time,
                plan.body.config.label()
            ),
            None => println!(
                "  {} wafers x {} stages/wafer: OOM",
                entry.wafer_count, entry.pp_multiplier
            ),
        }
    }
    Ok(())
}
