//! Quickstart: plan and evaluate GPT-3 6.7B training on the paper's wafer.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use temp_core::framework::Temp;
use temp_graph::models::ModelZoo;
use temp_wsc::units::{fmt_bytes, fmt_time};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4x8-die wafer (Table I), GPT-3 6.7B at its Table II workload.
    let temp = Temp::hpca(ModelZoo::gpt3_6_7b());
    println!("model: {}", temp.model());
    println!(
        "wafer: {}x{} dies, {:.1} PFLOPS total",
        temp.wafer().mesh_width,
        temp.wafer().mesh_height,
        temp.wafer().total_peak_flops() / 1e15
    );

    // Run the full DLWS search: enumerate hybrid configurations, cost them
    // with the TCME-mapped wafer model, DP + GA refine.
    let plan = temp.solve()?;
    println!("\nTEMP plan: {}", plan.config);
    println!("  step time          {}", fmt_time(plan.report.step_time));
    println!(
        "  throughput         {:.0} tokens/s",
        plan.report.throughput
    );
    println!(
        "  peak memory/die    {}",
        fmt_bytes(plan.report.memory.total())
    );
    println!("  power              {:.1} kW", plan.report.power / 1e3);
    println!(
        "  efficiency         {:.1} tokens/s/W",
        plan.report.power_efficiency
    );
    println!(
        "  comm exposed       {:.1}% of step",
        100.0 * plan.report.comm_fraction()
    );
    Ok(())
}
