//! Plan Llama3-70B training: where baselines OOM, what TEMP chooses, and
//! why memory efficiency decides who can train at all.
//!
//! ```sh
//! cargo run --release --example llama70b_training
//! ```

use temp_core::baselines::BaselineSystem;
use temp_core::framework::Temp;
use temp_graph::models::ModelZoo;
use temp_graph::workload::Workload;
use temp_parallel::memory::per_die_footprint;
use temp_parallel::strategy::HybridConfig;
use temp_wsc::units::GB;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = ModelZoo::llama3_70b();
    let temp = Temp::hpca(model.clone());

    // Why Megatron-style replication fails (Fig. 4(c)): the optimizer
    // states replicate across DP replicas.
    let workload = Workload::for_model(&model);
    let mega = per_die_footprint(&model, &workload, &HybridConfig::tuple(4, 8, 1, 1));
    println!(
        "Megatron DP=4 x TP=8 per-die memory: {:.1} GB (capacity 72 GB) -> {}",
        mega.total() / GB,
        if mega.fits(72.0 * GB) { "fits" } else { "OOM" }
    );

    // All seven systems on one wafer.
    println!("\nsystem          step time      memory/die");
    for report in temp.compare_all() {
        match report.report() {
            Some(c) => println!(
                "{:<14} {:>9.3} s {:>12.1} GB   ({})",
                report.system,
                c.step_time,
                c.memory.total() / GB,
                c.config.label()
            ),
            None => println!("{:<14}       OOM", report.system),
        }
    }

    // TEMP's winning plan in detail.
    let plan = temp.evaluate_system(&BaselineSystem::temp());
    if let Some(c) = plan.report() {
        println!("\nTEMP detail: config {}", c.config);
        println!(
            "  weights {:.1} GB | grads {:.1} GB | optimizer {:.1} GB | activations {:.1} GB | buffers {:.1} GB",
            c.memory.weights / GB,
            c.memory.gradients / GB,
            c.memory.optimizer / GB,
            c.memory.activations / GB,
            c.memory.buffers / GB
        );
    }
    Ok(())
}
