//! Walk the DLWS design space by hand: enumerate configurations, cost them,
//! and inspect what the dual-level search sees.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use temp_graph::models::ModelZoo;
use temp_graph::workload::Workload;
use temp_mapping::engines::MappingEngine;
use temp_parallel::strategy::HybridConfig;
use temp_solver::cost::WaferCostModel;
use temp_wsc::config::WaferConfig;
use temp_wsc::units::GB;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = ModelZoo::gpt3_6_7b();
    let workload = Workload::for_model(&model);
    let cost = WaferCostModel::new(WaferConfig::hpca(), model, workload);

    println!("(DP,TP,SP,TATP)   step time   memory/die   exposed comm   verdict");
    let mut rows: Vec<(String, f64, f64, f64, bool)> = Vec::new();
    for cfg in HybridConfig::enumerate_tuples(32, false) {
        let r = cost.evaluate(&cfg, MappingEngine::Tcme)?;
        rows.push((
            cfg.label(),
            r.step_time,
            r.memory.total() / GB,
            r.comm_fraction(),
            r.fits_memory,
        ));
    }
    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    for (label, t, mem, comm, fits) in rows.iter().take(12) {
        println!(
            "{label:<16} {t:>9.3} s {mem:>9.1} GB {:>12.1}%   {}",
            100.0 * comm,
            if *fits { "ok" } else { "OOM" }
        );
    }
    println!("... ({} configurations total)", rows.len());
    println!(
        "\nbest: {} — note the TATP degree in the paper's 8-16 sweet spot",
        rows[0].0
    );
    Ok(())
}
