//! Fault tolerance: inject link/core faults, adapt, and inspect the
//! rerouting the framework performs (§VIII-F).
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```

use temp_core::fault::{adapt_core_faults, adapt_link_faults};
use temp_wsc::config::WaferConfig;
use temp_wsc::fault::FaultMap;
use temp_wsc::topology::DieId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let wafer = WaferConfig::hpca();
    let mesh = wafer.mesh();

    // Step 1: fault localization — kill one specific link and reroute.
    let mut faults = FaultMap::healthy(&mesh);
    let link = mesh.link_between(DieId(1), DieId(2))?;
    faults.kill_link(&mesh, link);
    let path = faults.route_around(&mesh, DieId(1), DieId(2))?;
    println!(
        "link D1->D2 dead; rerouted through {} hops: {:?}",
        path.len() - 1,
        path
    );

    // Steps 2+3 at the framework level: throughput after adaptation.
    println!("\nlink-fault adaptation:");
    for rate in [0.05, 0.15, 0.30, 0.45] {
        let a = adapt_link_faults(&wafer, rate, 7);
        println!(
            "  {:>4.0}% links dead -> throughput {:>5.2}, mean detour {:.2} hops, connected={}",
            100.0 * rate,
            a.relative_throughput,
            a.mean_detour,
            a.connected
        );
    }
    println!("\ncore-fault adaptation (repartitioning re-balances work):");
    for rate in [0.05, 0.15, 0.25] {
        let a = adapt_core_faults(&wafer, rate, 7);
        println!(
            "  {:>4.0}% cores dead -> throughput {:>5.2} (surviving compute {:.2})",
            100.0 * rate,
            a.relative_throughput,
            a.surviving_compute
        );
    }

    // The planner itself on the broken wafer: re-run the full search
    // against the derated cost model and compare plans.
    use temp_graph::models::ModelZoo;
    use temp_graph::workload::Workload;
    use temp_solver::dlws::Dlws;
    let model = ModelZoo::gpt3_6_7b();
    let workload = Workload::for_model(&model);
    let solver = Dlws::new(wafer.clone(), model, workload);
    let healthy_plan = solver.solve()?;
    let core_faults = FaultMap::inject_core_faults(&mesh, 0.25, 7);
    let degraded_plan = solver.resolve_degraded(&core_faults)?;
    println!(
        "\nre-solved on 25% core faults: {} at {:.3}s/step (healthy: {} at {:.3}s/step, {:.0}% kept)",
        degraded_plan.config.label(),
        degraded_plan.report.step_time,
        healthy_plan.config.label(),
        healthy_plan.report.step_time,
        100.0 * healthy_plan.report.step_time / degraded_plan.report.step_time
    );

    // Solves accept a wall-clock budget; an expired deadline still
    // returns a usable (if less optimized) plan.
    let (plan, timed_out) = solver.solve_with_deadline(std::time::Duration::from_secs(60))?;
    println!(
        "deadline solve: {} (timed out: {timed_out})",
        plan.config.label()
    );
    Ok(())
}
